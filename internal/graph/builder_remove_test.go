package graph

import (
	"sort"
	"testing"
)

// frozenEdges freezes b and returns its edge list, sorted.
func frozenEdges(t *testing.T, b *Builder) []Edge {
	t.Helper()
	g, err := b.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	es := g.EdgeList()
	sort.Slice(es, func(i, j int) bool {
		if es[i].From != es[j].From {
			return es[i].From < es[j].From
		}
		if es[i].To != es[j].To {
			return es[i].To < es[j].To
		}
		return es[i].Label < es[j].Label
	})
	return es
}

// TestBuilderRemoveEdge drives add/remove sequences and checks the frozen
// result. RemoveEdge must delete every occurrence — duplicates and
// self-loops included — or an add/remove/add sequence driven through the
// mutation overlay diverges from the graph it claims to describe.
func TestBuilderRemoveEdge(t *testing.T) {
	type step struct {
		add    bool
		e      Edge
		wantRm bool // for removes: expected return
	}
	adds := func(es ...Edge) []step {
		var ss []step
		for _, e := range es {
			ss = append(ss, step{add: true, e: e})
		}
		return ss
	}
	rm := func(e Edge, want bool) step { return step{e: e, wantRm: want} }

	tests := []struct {
		name  string
		n     int
		steps []step
		want  []Edge
	}{
		{
			name:  "remove only edge",
			n:     3,
			steps: append(adds(Edge{From: 0, To: 1}), rm(Edge{From: 0, To: 1}, true)),
			want:  nil,
		},
		{
			name:  "remove absent edge reports false",
			n:     3,
			steps: append(adds(Edge{From: 0, To: 1}), rm(Edge{From: 1, To: 2}, false)),
			want:  []Edge{{From: 0, To: 1}},
		},
		{
			name: "remove deletes every duplicate",
			n:    3,
			steps: append(adds(
				Edge{From: 0, To: 1}, Edge{From: 0, To: 1}, Edge{From: 0, To: 1}, Edge{From: 1, To: 2},
			), rm(Edge{From: 0, To: 1}, true)),
			want: []Edge{{From: 1, To: 2}},
		},
		{
			name: "self-loop added twice fully removed",
			n:    2,
			steps: append(adds(
				Edge{From: 1, To: 1}, Edge{From: 1, To: 1}, Edge{From: 0, To: 1},
			), rm(Edge{From: 1, To: 1}, true)),
			want: []Edge{{From: 0, To: 1}},
		},
		{
			name: "add remove add converges to one edge",
			n:    3,
			steps: []step{
				{add: true, e: Edge{From: 0, To: 2}},
				rm(Edge{From: 0, To: 2}, true),
				{add: true, e: Edge{From: 0, To: 2}},
			},
			want: []Edge{{From: 0, To: 2}},
		},
		{
			name: "self-loop add remove add converges",
			n:    2,
			steps: []step{
				{add: true, e: Edge{From: 1, To: 1}},
				{add: true, e: Edge{From: 1, To: 1}},
				rm(Edge{From: 1, To: 1}, true),
				{add: true, e: Edge{From: 1, To: 1}},
			},
			want: []Edge{{From: 1, To: 1}},
		},
		{
			name: "second remove of same edge reports false",
			n:    3,
			steps: []step{
				{add: true, e: Edge{From: 0, To: 1}},
				rm(Edge{From: 0, To: 1}, true),
				rm(Edge{From: 0, To: 1}, false),
			},
			want: nil,
		},
		{
			name: "exact-match only: other endpoints survive",
			n:    4,
			steps: append(adds(
				Edge{From: 0, To: 1}, Edge{From: 1, To: 0}, Edge{From: 0, To: 2},
			), rm(Edge{From: 0, To: 1}, true)),
			want: []Edge{{From: 0, To: 2}, {From: 1, To: 0}},
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			b := NewBuilder(tc.n)
			for i, s := range tc.steps {
				if s.add {
					b.AddEdge(s.e.From, s.e.To)
					continue
				}
				if got := b.RemoveEdge(s.e); got != s.wantRm {
					t.Fatalf("step %d: RemoveEdge(%v) = %v, want %v", i, s.e, got, s.wantRm)
				}
			}
			got := frozenEdges(t, b)
			if len(got) != len(tc.want) {
				t.Fatalf("frozen edges = %v, want %v", got, tc.want)
			}
			for i := range tc.want {
				if got[i] != tc.want[i] {
					t.Fatalf("frozen edges = %v, want %v", got, tc.want)
				}
			}
		})
	}
}

// TestBuilderRemoveEdgeLabeled: removal matches the full (from,to,label)
// triple, so parallel edges under different labels are independent.
func TestBuilderRemoveEdgeLabeled(t *testing.T) {
	b := NewBuilder(2)
	a := b.LabelID("a")
	c := b.LabelID("c")
	b.AddLabeledEdge(0, 1, a)
	b.AddLabeledEdge(0, 1, c)
	if !b.RemoveEdge(Edge{From: 0, To: 1, Label: a}) {
		t.Fatal("labeled removal missed")
	}
	got := frozenEdges(t, b)
	if len(got) != 1 || got[0] != (Edge{From: 0, To: 1, Label: c}) {
		t.Fatalf("frozen edges = %v, want only the c-labeled edge", got)
	}
}

// TestBuilderRemoveEdgeViaMutate: the frozen→Mutate→RemoveEdge→Freeze
// round trip the reindexer uses preserves the sorted edge order contract.
func TestBuilderRemoveEdgeViaMutate(t *testing.T) {
	g := FromEdges(4, [][2]V{{0, 1}, {1, 2}, {2, 3}, {0, 3}})
	b := Mutate(g)
	if !b.RemoveEdge(Edge{From: 1, To: 2}) {
		t.Fatal("removal of frozen edge missed")
	}
	b.AddEdge(1, 2) // re-add: must converge to the original graph
	g2, err := b.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	if g2.M() != g.M() {
		t.Fatalf("M = %d, want %d", g2.M(), g.M())
	}
	want := frozenEdges(t, Mutate(g))
	got := frozenEdges(t, Mutate(g2))
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("edges = %v, want %v", got, want)
		}
	}
}
