package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The exchange format is a line-oriented edge list:
//
//	# comment
//	u v          (plain edge)
//	u v label    (labeled edge; label is a name, ids are allocated in order)
//
// Vertex tokens that parse as unsigned integers are used as ids directly;
// otherwise they are treated as names and assigned dense ids on first use.

// Write serializes g in the edge-list exchange format.
func Write(w io.Writer, g *Digraph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# vertices=%d edges=%d labels=%d\n", g.N(), g.M(), g.Labels())
	var err error
	g.Edges(func(e Edge) bool {
		if g.Labeled() {
			_, err = fmt.Fprintf(bw, "%d %d %s\n", e.From, e.To, g.LabelName(e.Label))
		} else {
			_, err = fmt.Fprintf(bw, "%d %d\n", e.From, e.To)
		}
		return err == nil
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}

// Read parses a graph in the edge-list exchange format.
func Read(r io.Reader) (*Digraph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	b := NewBuilder(0)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Fields(line)
		if len(f) != 2 && len(f) != 3 {
			return nil, fmt.Errorf("graph: line %d: want 2 or 3 fields, got %d", lineNo, len(f))
		}
		u, err := parseVertex(b, f[0])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %v", lineNo, err)
		}
		v, err := parseVertex(b, f[1])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %v", lineNo, err)
		}
		if len(f) == 3 {
			b.AddLabeledEdge(u, v, b.LabelID(f[2]))
		} else {
			b.AddEdge(u, v)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return b.Freeze()
}

func parseVertex(b *Builder, tok string) (V, error) {
	if n, err := strconv.ParseUint(tok, 10, 32); err == nil {
		return V(n), nil
	}
	if tok == "" {
		return 0, fmt.Errorf("empty vertex token")
	}
	return b.NamedVertex(tok), nil
}
