package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/faultinject"
)

// The exchange format is a line-oriented edge list:
//
//	# comment
//	u v          (plain edge)
//	u v label    (labeled edge; label is a name, ids are allocated in order)
//
// Vertex tokens that parse as unsigned integers are used as ids directly;
// otherwise they are treated as names and assigned dense ids on first use.

// Write serializes g in the edge-list exchange format.
func Write(w io.Writer, g *Digraph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# vertices=%d edges=%d labels=%d\n", g.N(), g.M(), g.Labels())
	var err error
	g.Edges(func(e Edge) bool {
		if g.Labeled() {
			_, err = fmt.Fprintf(bw, "%d %d %s\n", e.From, e.To, g.LabelName(e.Label))
		} else {
			_, err = fmt.Fprintf(bw, "%d %d\n", e.From, e.To)
		}
		return err == nil
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}

// Limits bounds what ReadLimited will accept before giving up on an edge
// list. Both bounds exist because the format allows sparse numeric vertex
// ids: a single hostile line like "0 4294967295" would otherwise commit
// the reader to materializing a four-billion-vertex CSR.
type Limits struct {
	// MaxVertices caps the highest vertex id + 1 (and the number of named
	// vertices). 0 selects DefaultLimits.MaxVertices.
	MaxVertices int
	// MaxEdges caps the number of edge lines. 0 selects
	// DefaultLimits.MaxEdges.
	MaxEdges int
}

// DefaultLimits is what Read enforces: generous for any graph this
// library is realistically pointed at, small enough that a malformed or
// adversarial edge list fails with an error instead of an allocation
// blow-up.
var DefaultLimits = Limits{MaxVertices: 1 << 26, MaxEdges: 1 << 27}

// Read parses a graph in the edge-list exchange format, enforcing
// DefaultLimits. Use ReadLimited to choose different bounds.
func Read(r io.Reader) (*Digraph, error) {
	return ReadLimited(r, DefaultLimits)
}

// ReadLimited parses a graph in the edge-list exchange format. Malformed
// lines, oversized vertex ids, too many edges, too many labels, and
// overlong lines all surface as errors — never panics or unbounded
// allocation.
func ReadLimited(r io.Reader, lim Limits) (*Digraph, error) {
	if err := faultinject.HitErr("graph/read"); err != nil {
		return nil, err
	}
	if lim.MaxVertices <= 0 {
		lim.MaxVertices = DefaultLimits.MaxVertices
	}
	if lim.MaxEdges <= 0 {
		lim.MaxEdges = DefaultLimits.MaxEdges
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	b := NewBuilder(0)
	lineNo, edges := 0, 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Fields(line)
		if len(f) != 2 && len(f) != 3 {
			return nil, fmt.Errorf("graph: line %d: want 2 or 3 fields, got %d", lineNo, len(f))
		}
		if edges++; edges > lim.MaxEdges {
			return nil, fmt.Errorf("graph: line %d: more than %d edges", lineNo, lim.MaxEdges)
		}
		u, err := parseVertex(b, f[0])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %v", lineNo, err)
		}
		v, err := parseVertex(b, f[1])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %v", lineNo, err)
		}
		hi := u
		if v > hi {
			hi = v
		}
		if int(hi) >= lim.MaxVertices {
			return nil, fmt.Errorf("graph: line %d: vertex id %d exceeds limit %d", lineNo, hi, lim.MaxVertices)
		}
		if len(f) == 3 {
			l, err := b.TryLabelID(f[2])
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: %v", lineNo, err)
			}
			b.AddLabeledEdge(u, v, l)
		} else {
			b.AddEdge(u, v)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return b.Freeze()
}

func parseVertex(b *Builder, tok string) (V, error) {
	if n, err := strconv.ParseUint(tok, 10, 32); err == nil {
		return V(n), nil
	}
	if tok == "" {
		return 0, fmt.Errorf("empty vertex token")
	}
	return b.NamedVertex(tok), nil
}
