package pll

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/persist"
)

// Snapshots use the shared internal/persist container (format "pll",
// version 1) with three sections:
//
//	meta   — index name, vertex count n
//	rank   — the total order, rank[n]
//	labels — per vertex: in-label ranks, out-label ranks
//
// Labels are positional 2-hop facts about a specific graph; the caller is
// responsible for pairing a snapshot with the graph it was built from
// (as with any external index file in a DBMS).
const (
	persistFormat  = "pll"
	persistVersion = 1
)

// WriteTo serializes the index. It returns the number of bytes written.
func (ix *Index) WriteTo(w io.Writer) (int64, error) {
	pw := persist.NewWriter(w, persistFormat, persistVersion)
	pw.Section("meta", func(e *persist.Encoder) {
		e.String(ix.name)
		e.U32(uint32(len(ix.rank)))
	})
	pw.Section("rank", func(e *persist.Encoder) {
		e.U32s(ix.rank)
	})
	pw.Section("labels", func(e *persist.Encoder) {
		for v := range ix.rank {
			e.U32s(ix.in[v])
			e.U32s(ix.out[v])
		}
	})
	return pw.Close()
}

// Read deserializes an index previously written with WriteTo.
func Read(r io.Reader) (*Index, error) {
	pr, err := persist.NewReader(r, persistFormat, persistVersion)
	if err != nil {
		return nil, err
	}
	meta, err := pr.Section("meta")
	if err != nil {
		return nil, err
	}
	name := meta.String()
	n := meta.U32()
	if err := meta.Close(); err != nil {
		return nil, err
	}
	if n > 1<<30 {
		return nil, fmt.Errorf("pll: implausible vertex count %d", n)
	}
	ix := &Index{
		name: name,
		in:   make([][]uint32, n),
		out:  make([][]uint32, n),
	}
	rank, err := pr.Section("rank")
	if err != nil {
		return nil, err
	}
	ix.rank = rank.U32s()
	if err := rank.Close(); err != nil {
		return nil, err
	}
	if uint32(len(ix.rank)) != n {
		return nil, fmt.Errorf("pll: rank section has %d entries, want %d", len(ix.rank), n)
	}
	labels, err := pr.Section("labels")
	if err != nil {
		return nil, err
	}
	entries := 0
	for v := 0; v < int(n); v++ {
		ix.in[v] = labels.U32s()
		ix.out[v] = labels.U32s()
		if labels.Err() != nil {
			return nil, labels.Err()
		}
		if uint32(len(ix.in[v])) > n || uint32(len(ix.out[v])) > n {
			return nil, fmt.Errorf("pll: label list longer than n")
		}
		entries += len(ix.in[v]) + len(ix.out[v])
	}
	if err := labels.Close(); err != nil {
		return nil, err
	}
	ix.stats = core.Stats{Entries: entries, Bytes: entries*4 + int(n)*4}
	return ix, nil
}
