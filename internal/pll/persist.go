package pll

import (
	"fmt"
	"io"

	"repro/internal/labelstore"
	"repro/internal/persist"
)

// Snapshots use the shared internal/persist container (format "pll") in
// two layouts:
//
// Version 1 — the streaming codec (WriteTo):
//
//	meta   — index name, vertex count n
//	rank   — the total order, rank[n]
//	labels — per vertex: in-label ranks, out-label ranks
//
// Version 2 — the mapped layout (WriteMapped): fixed-width aligned
// sections carrying the flat labelstore arrays verbatim, plus a trailing
// checksum, so persist.OpenMapped can hand the arrays back as zero-copy
// views (FromMapped) and cold start without a decode pass:
//
//	meta   — name, n, encoding, per-direction entry counts
//	rank   — rank[n], 4-byte aligned
//	inoff/outoff   — CSR offset tables, 4-byte aligned
//	inlab/outlab   — raw label arrays (Raw encoding), 4-byte aligned
//	indata/outdata — varint label streams (Varint encoding)
//	crc32  — CRC-32C of everything above
//
// Read accepts both versions. Labels are positional 2-hop facts about a
// specific graph; the caller is responsible for pairing a snapshot with
// the graph it was built from (as with any external index file in a
// DBMS).
const (
	persistFormat     = "pll"
	persistVersion    = 1
	persistVersionMap = 2
)

// WriteTo serializes the index in the version-1 streaming codec. It
// returns the number of bytes written.
func (ix *Index) WriteTo(w io.Writer) (int64, error) {
	pw := persist.NewWriter(w, persistFormat, persistVersion)
	pw.Section("meta", func(e *persist.Encoder) {
		e.String(ix.name)
		e.U32(uint32(len(ix.rank)))
	})
	pw.Section("rank", func(e *persist.Encoder) {
		e.U32s(ix.rank)
	})
	pw.Section("labels", func(e *persist.Encoder) {
		var row []uint32
		for v := range ix.rank {
			row = ix.in.AppendRow(row[:0], v)
			e.U32s(row)
			row = ix.out.AppendRow(row[:0], v)
			e.U32s(row)
		}
	})
	return pw.Close()
}

// WriteMapped serializes the index in the version-2 mapped layout. The
// writer must be positioned at the start of the file (alignment is
// computed from the file origin). Returns the number of bytes written.
func (ix *Index) WriteMapped(w io.Writer) (int64, error) {
	pw := persist.NewWriter(w, persistFormat, persistVersionMap)
	pw.Section("meta", func(e *persist.Encoder) {
		e.String(ix.name)
		e.U32(uint32(len(ix.rank)))
		e.U32(uint32(ix.in.Encoding()))
		e.U64(uint64(ix.in.Entries()))
		e.U64(uint64(ix.out.Entries()))
	})
	pw.AlignedU32s("rank", ix.rank)
	inOff, inLab, inData := ix.in.Parts()
	outOff, outLab, outData := ix.out.Parts()
	pw.AlignedU32s("inoff", inOff)
	pw.AlignedU32s("outoff", outOff)
	if ix.in.Encoding() == labelstore.Raw {
		pw.AlignedU32s("inlab", inLab)
		pw.AlignedU32s("outlab", outLab)
	} else {
		pw.AlignedBytes("indata", inData)
		pw.AlignedBytes("outdata", outData)
	}
	pw.Checksum()
	return pw.Close()
}

// Read deserializes an index previously written with WriteTo (v1) or
// WriteMapped (v2) from a stream — the decode path. For page-mapped
// loading of v2 snapshots use persist.OpenMapped + FromMapped.
func Read(r io.Reader) (*Index, error) {
	pr, err := persist.NewReader(r, persistFormat, persistVersionMap)
	if err != nil {
		return nil, err
	}
	return readSections(pr)
}

// ReadSections deserializes from an already-opened container whose
// format was sniffed by the caller (persist.NewReaderAny).
func ReadSections(pr *persist.Reader) (*Index, error) {
	if pr.Version() > persistVersionMap {
		return nil, fmt.Errorf("pll: snapshot version %d not supported (max %d)", pr.Version(), persistVersionMap)
	}
	return readSections(pr)
}

func readSections(pr *persist.Reader) (*Index, error) {
	if pr.Version() >= persistVersionMap {
		return readV2(pr)
	}
	return readV1(pr)
}

func readV1(pr *persist.Reader) (*Index, error) {
	meta, err := pr.Section("meta")
	if err != nil {
		return nil, err
	}
	name := meta.String()
	n := meta.U32()
	if err := meta.Close(); err != nil {
		return nil, err
	}
	if n > 1<<30 {
		return nil, fmt.Errorf("pll: implausible vertex count %d", n)
	}
	ix := &Index{name: name}
	rank, err := pr.Section("rank")
	if err != nil {
		return nil, err
	}
	ix.rank = rank.U32s()
	if err := rank.Close(); err != nil {
		return nil, err
	}
	if uint32(len(ix.rank)) != n {
		return nil, fmt.Errorf("pll: rank section has %d entries, want %d", len(ix.rank), n)
	}
	labels, err := pr.Section("labels")
	if err != nil {
		return nil, err
	}
	bin := labelstore.NewBuilder(int(n))
	bout := labelstore.NewBuilder(int(n))
	defer bin.Release()
	defer bout.Release()
	for v := 0; v < int(n); v++ {
		lin := labels.U32s()
		lout := labels.U32s()
		if labels.Err() != nil {
			return nil, labels.Err()
		}
		if uint32(len(lin)) > n || uint32(len(lout)) > n {
			return nil, fmt.Errorf("pll: label list longer than n")
		}
		for _, r := range lin {
			bin.Append(v, r)
		}
		for _, r := range lout {
			bout.Append(v, r)
		}
	}
	if err := labels.Close(); err != nil {
		return nil, err
	}
	ix.in = bin.Freeze(labelstore.Raw)
	ix.out = bout.Freeze(labelstore.Raw)
	ix.refreshStats()
	return ix, nil
}

// v2Meta carries the v2 meta section fields shared by the streaming and
// mapped readers.
type v2Meta struct {
	name                  string
	n                     uint32
	enc                   labelstore.Encoding
	inEntries, outEntries uint64
}

func readV2Meta(meta *persist.Decoder) (v2Meta, error) {
	var m v2Meta
	m.name = meta.String()
	m.n = meta.U32()
	enc := meta.U32()
	m.inEntries = meta.U64()
	m.outEntries = meta.U64()
	if err := meta.Close(); err != nil {
		return m, err
	}
	if m.n > 1<<30 {
		return m, fmt.Errorf("pll: implausible vertex count %d", m.n)
	}
	if enc != uint32(labelstore.Raw) && enc != uint32(labelstore.Varint) {
		return m, fmt.Errorf("pll: unknown label encoding %d", enc)
	}
	m.enc = labelstore.Encoding(enc)
	if m.inEntries > uint64(m.n)*uint64(m.n) || m.outEntries > uint64(m.n)*uint64(m.n) {
		return m, fmt.Errorf("pll: implausible entry counts %d/%d", m.inEntries, m.outEntries)
	}
	return m, nil
}

func readV2(pr *persist.Reader) (*Index, error) {
	meta, err := pr.Section("meta")
	if err != nil {
		return nil, err
	}
	m, err := readV2Meta(meta)
	if err != nil {
		return nil, err
	}
	ix := &Index{name: m.name}
	readU32s := func(name string) ([]uint32, error) {
		d, err := pr.Section(name)
		if err != nil {
			return nil, err
		}
		vs := d.AlignedU32s()
		return vs, d.Close()
	}
	if ix.rank, err = readU32s("rank"); err != nil {
		return nil, err
	}
	if uint32(len(ix.rank)) != m.n {
		return nil, fmt.Errorf("pll: rank section has %d entries, want %d", len(ix.rank), m.n)
	}
	inOff, err := readU32s("inoff")
	if err != nil {
		return nil, err
	}
	outOff, err := readU32s("outoff")
	if err != nil {
		return nil, err
	}
	n := int(m.n)
	if m.enc == labelstore.Raw {
		inLab, err := readU32s("inlab")
		if err != nil {
			return nil, err
		}
		outLab, err := readU32s("outlab")
		if err != nil {
			return nil, err
		}
		if ix.in, err = labelstore.FromParts(n, inOff, inLab); err != nil {
			return nil, fmt.Errorf("pll: in labels: %w", err)
		}
		if ix.out, err = labelstore.FromParts(n, outOff, outLab); err != nil {
			return nil, fmt.Errorf("pll: out labels: %w", err)
		}
	} else {
		readBytes := func(name string) ([]byte, error) {
			d, err := pr.Section(name)
			if err != nil {
				return nil, err
			}
			b := d.AlignedBytes()
			return b, d.Close()
		}
		inData, err := readBytes("indata")
		if err != nil {
			return nil, err
		}
		outData, err := readBytes("outdata")
		if err != nil {
			return nil, err
		}
		// Streamed (non-checksummed) loads fully validate the streams.
		if ix.in, err = labelstore.FromEncoded(n, inOff, inData, int(m.inEntries), true); err != nil {
			return nil, fmt.Errorf("pll: in labels: %w", err)
		}
		if ix.out, err = labelstore.FromEncoded(n, outOff, outData, int(m.outEntries), true); err != nil {
			return nil, fmt.Errorf("pll: out labels: %w", err)
		}
	}
	ix.refreshStats()
	return ix, nil
}

// FromMapped binds a version-2 snapshot opened with persist.OpenMapped
// as a zero-copy index: the rank array, offset tables, and label
// payloads are views into the mapping (pages fault in as queries touch
// them). The index pins the mapping for its lifetime. The mapping's
// whole-file checksum (verified by OpenMapped) stands in for the
// per-field validation the streaming reader performs.
func FromMapped(m *persist.Mapped) (*Index, error) {
	if m.Format() != persistFormat {
		return nil, fmt.Errorf("pll: mapped snapshot has format %q, want %q", m.Format(), persistFormat)
	}
	if m.Version() != persistVersionMap {
		return nil, fmt.Errorf("pll: mapped snapshot version %d not supported (want %d)", m.Version(), persistVersionMap)
	}
	meta, err := m.Section("meta")
	if err != nil {
		return nil, err
	}
	mm, err := readV2Meta(meta)
	if err != nil {
		return nil, err
	}
	ix := &Index{name: mm.name, backing: m}
	if ix.rank, err = m.U32s("rank"); err != nil {
		return nil, err
	}
	if uint32(len(ix.rank)) != mm.n {
		return nil, fmt.Errorf("pll: rank section has %d entries, want %d", len(ix.rank), mm.n)
	}
	inOff, err := m.U32s("inoff")
	if err != nil {
		return nil, err
	}
	outOff, err := m.U32s("outoff")
	if err != nil {
		return nil, err
	}
	n := int(mm.n)
	if mm.enc == labelstore.Raw {
		inLab, err := m.U32s("inlab")
		if err != nil {
			return nil, err
		}
		outLab, err := m.U32s("outlab")
		if err != nil {
			return nil, err
		}
		if ix.in, err = labelstore.FromParts(n, inOff, inLab); err != nil {
			return nil, fmt.Errorf("pll: in labels: %w", err)
		}
		if ix.out, err = labelstore.FromParts(n, outOff, outLab); err != nil {
			return nil, fmt.Errorf("pll: out labels: %w", err)
		}
	} else {
		inData, err := m.Bytes("indata")
		if err != nil {
			return nil, err
		}
		outData, err := m.Bytes("outdata")
		if err != nil {
			return nil, err
		}
		if ix.in, err = labelstore.FromEncoded(n, inOff, inData, int(mm.inEntries), false); err != nil {
			return nil, fmt.Errorf("pll: in labels: %w", err)
		}
		if ix.out, err = labelstore.FromEncoded(n, outOff, outData, int(mm.outEntries), false); err != nil {
			return nil, fmt.Errorf("pll: out labels: %w", err)
		}
	}
	ix.refreshStats()
	return ix, nil
}
