package pll

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/core"
)

// The on-disk format is a little-endian binary stream:
//
//	magic "PLL1" | name len+bytes | n | rank[n] |
//	per vertex: len(in) + in entries | len(out) + out entries
//
// Labels are positional 2-hop facts about a specific graph; the caller is
// responsible for pairing a label file with the graph it was built from
// (as with any external index file in a DBMS).

var persistMagic = [4]byte{'P', 'L', 'L', '1'}

// WriteTo serializes the index. It returns the number of bytes written.
func (ix *Index) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var written int64
	put := func(data interface{}) error {
		if err := binary.Write(bw, binary.LittleEndian, data); err != nil {
			return err
		}
		written += int64(binary.Size(data))
		return nil
	}
	if err := put(persistMagic); err != nil {
		return written, err
	}
	name := []byte(ix.name)
	if err := put(uint32(len(name))); err != nil {
		return written, err
	}
	if err := put(name); err != nil {
		return written, err
	}
	n := uint32(len(ix.rank))
	if err := put(n); err != nil {
		return written, err
	}
	if err := put(ix.rank); err != nil {
		return written, err
	}
	for v := 0; v < int(n); v++ {
		for _, list := range [][]uint32{ix.in[v], ix.out[v]} {
			if err := put(uint32(len(list))); err != nil {
				return written, err
			}
			if len(list) > 0 {
				if err := put(list); err != nil {
					return written, err
				}
			}
		}
	}
	return written, bw.Flush()
}

// Read deserializes an index previously written with WriteTo.
func Read(r io.Reader) (*Index, error) {
	br := bufio.NewReader(r)
	get := func(data interface{}) error {
		return binary.Read(br, binary.LittleEndian, data)
	}
	var magic [4]byte
	if err := get(&magic); err != nil {
		return nil, fmt.Errorf("pll: read magic: %w", err)
	}
	if magic != persistMagic {
		return nil, fmt.Errorf("pll: bad magic %q", magic[:])
	}
	var nameLen uint32
	if err := get(&nameLen); err != nil {
		return nil, err
	}
	if nameLen > 1<<16 {
		return nil, fmt.Errorf("pll: implausible name length %d", nameLen)
	}
	name := make([]byte, nameLen)
	if err := get(&name); err != nil {
		return nil, err
	}
	var n uint32
	if err := get(&n); err != nil {
		return nil, err
	}
	if n > 1<<30 {
		return nil, fmt.Errorf("pll: implausible vertex count %d", n)
	}
	ix := &Index{
		name: string(name),
		rank: make([]uint32, n),
		in:   make([][]uint32, n),
		out:  make([][]uint32, n),
	}
	if err := get(&ix.rank); err != nil {
		return nil, err
	}
	entries := 0
	for v := 0; v < int(n); v++ {
		for li, dst := range []*[][]uint32{&ix.in, &ix.out} {
			_ = li
			var l uint32
			if err := get(&l); err != nil {
				return nil, err
			}
			if l > n {
				return nil, fmt.Errorf("pll: label list longer than n")
			}
			list := make([]uint32, l)
			if l > 0 {
				if err := get(&list); err != nil {
					return nil, err
				}
			}
			(*dst)[v] = list
			entries += int(l)
		}
	}
	ix.stats = core.Stats{Entries: entries, Bytes: entries*4 + int(n)*4}
	return ix, nil
}
