package pll

import (
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/indextest"
	"repro/internal/tc"
)

func TestConformanceDegree(t *testing.T) {
	indextest.CheckGeneralIndex(t, func(g *graph.Digraph) core.Index {
		return New(g, Options{Order: OrderDegree})
	})
}

func TestConformanceTopological(t *testing.T) {
	indextest.CheckGeneralIndex(t, func(g *graph.Digraph) core.Index {
		return New(g, Options{Order: OrderTopological})
	})
}

func TestConformanceDegreeProduct(t *testing.T) {
	indextest.CheckGeneralIndex(t, func(g *graph.Digraph) core.Index {
		return New(g, Options{Order: OrderDegreeProduct})
	})
}

func TestNames(t *testing.T) {
	g := gen.RandomDAG(gen.Config{N: 20, M: 40, Seed: 1})
	if New(g, Options{}).Name() != "PLL" {
		t.Error("default name")
	}
	if New(g, Options{Order: OrderTopological}).Name() != "TFL" {
		t.Error("topo name")
	}
	if New(g, Options{Name: "DL"}).Name() != "DL" {
		t.Error("override name")
	}
}

func TestCompleteIndexPureLookup(t *testing.T) {
	// A complete index must agree with the oracle using Reach only —
	// trivially true here, but also verify label sizes are far below TC.
	g := gen.ScaleFree(400, 3, 2)
	ix := New(g, Options{})
	oracle := tc.NewClosure(g)
	pairs := oracle.Pairs()
	in, out := ix.LabelSizes()
	if in+out >= pairs {
		t.Errorf("2-hop labels (%d) should undercut TC pairs (%d) on scale-free graphs",
			in+out, pairs)
	}
}

func TestLabelsSortedByRank(t *testing.T) {
	g := gen.RandomDAG(gen.Config{N: 150, M: 450, Seed: 3})
	ix := New(g, Options{})
	for v := 0; v < g.N(); v++ {
		lin, _ := ix.in.Row(v)
		for i := 1; i < len(lin); i++ {
			if lin[i-1] >= lin[i] {
				t.Fatalf("in[%d] not strictly ascending", v)
			}
		}
		lout, _ := ix.out.Row(v)
		for i := 1; i < len(lout); i++ {
			if lout[i-1] >= lout[i] {
				t.Fatalf("out[%d] not strictly ascending", v)
			}
		}
	}
}

func TestLabelsSound(t *testing.T) {
	// Every label entry must certify a real reachability: r ∈ in[v] means
	// hub(r) reaches v; r ∈ out[v] means v reaches hub(r).
	g := gen.ErdosRenyi(gen.Config{N: 60, M: 200, Seed: 4})
	ix := New(g, Options{})
	oracle := tc.NewClosure(g)
	hub := make([]graph.V, g.N())
	for v := 0; v < g.N(); v++ {
		hub[ix.rank[v]] = graph.V(v)
	}
	for v := 0; v < g.N(); v++ {
		lin, _ := ix.in.Row(v)
		for _, r := range lin {
			if !oracle.Reach(hub[r], graph.V(v)) {
				t.Fatalf("unsound Lin entry: hub %d does not reach %d", hub[r], v)
			}
		}
		lout, _ := ix.out.Row(v)
		for _, r := range lout {
			if !oracle.Reach(graph.V(v), hub[r]) {
				t.Fatalf("unsound Lout entry: %d does not reach hub %d", v, hub[r])
			}
		}
	}
}

func TestStats(t *testing.T) {
	g := gen.RandomDAG(gen.Config{N: 100, M: 300, Seed: 5})
	ix := New(g, Options{})
	st := ix.Stats()
	if st.Entries <= 0 || st.Bytes <= 0 {
		t.Errorf("stats %+v", st)
	}
	in, out := ix.LabelSizes()
	if in+out != st.Entries {
		t.Errorf("entries %d != label sizes %d", st.Entries, in+out)
	}
}
