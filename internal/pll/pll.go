// Package pll implements pruned 2-hop labeling (§3.2): every vertex v gets
// Lin(v) and Lout(v) hub sets; Qr(s, t) holds iff s ∈ Lin(t), t ∈ Lout(s),
// or Lin(t) ∩ Lout(s) ≠ ∅ (the paper's three cases). Labels are built by
// forward and backward pruned BFSs from the vertices in a strict total
// order: the BFS from v adds hub v only where no higher-priority hub
// already certifies the pair, and terminates branches at such vertices.
//
// The package implements the TOL-framework observation of §3.2 that TFL,
// DL and PLL are instantiations of the same algorithm under different
// total orders:
//
//	OrderDegree        — DL [25] / PLL [49] (proven equivalent in [25])
//	OrderTopological   — TFL-style topological priority [13] (DAG input)
//	OrderDegreeProduct — the in×out-degree ranking used by TOL [55]
//
// The index is complete and applies to general (cyclic) graphs directly —
// "unlike the tree-cover index, the 2-hop index can be directly applied to
// general graphs".
//
// Labels live in internal/labelstore flat CSR storage: build emits into
// pooled arenas, Freeze packs each direction into one offset table plus
// one contiguous payload, and queries are forward merges over contiguous
// memory — optionally delta+varint compressed (Options.Enc).
package pll

import (
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/labelstore"
	"repro/internal/order"
)

// Order selects the total order instantiation.
type Order int

// Total-order instantiations.
const (
	OrderDegree Order = iota
	OrderTopological
	OrderDegreeProduct
)

// Options configures the labeling.
type Options struct {
	Order Order
	// Name overrides the reported index name (e.g. "DL", "TFL"); default
	// derives from the order.
	Name string
	// Enc selects the frozen label encoding: labelstore.Raw (default)
	// keeps flat uint32 arrays, labelstore.Varint delta-compresses them.
	Enc labelstore.Encoding
	// Check is an optional cancellation checkpoint ticked once per BFS
	// dequeue of the labeling passes; nil runs unchecked.
	Check *core.Check
}

// Index is the pruned 2-hop label index.
type Index struct {
	name string
	// in and out hold hub ranks per vertex, ascending (hubs are
	// identified by their rank in the total order; lower rank = higher
	// priority), packed flat.
	in, out *labelstore.Store
	rank    []uint32
	stats   core.Stats
	// backing pins the snapshot mapping a zero-copy loaded index's
	// stores alias (see FromMapped); nil for built indexes.
	backing interface{ Close() error }
}

// New builds the pruned 2-hop labeling of g under the configured order.
func New(g *graph.Digraph, opts Options) *Index {
	start := time.Now()
	n := g.N()
	var vs []graph.V
	name := opts.Name
	switch opts.Order {
	case OrderTopological:
		topo, ok := order.Topological(g)
		if ok {
			// Prioritize by a mix: topological position folded from both
			// ends, approximating TFL's level folding: highest priority to
			// the vertices in the middle "folds" is complex; plain
			// topological order is the documented simplification.
			vs = topo
		} else {
			// Cyclic input: fall back to degree order (TFL assumes DAGs).
			vs = order.ByDegreeDesc(g)
		}
		if name == "" {
			name = "TFL"
		}
	case OrderDegreeProduct:
		vs = order.ByDegreeProductDesc(g)
		if name == "" {
			name = "TOL-order"
		}
	default:
		vs = order.ByDegreeDesc(g)
		if name == "" {
			name = "PLL"
		}
	}
	ix := &Index{
		name: name,
		rank: make([]uint32, n),
	}
	for i, v := range vs {
		ix.rank[v] = uint32(i)
	}
	bin := labelstore.NewBuilder(n)
	bout := labelstore.NewBuilder(n)
	queue := make([]graph.V, 0, n)
	// stamp[w] == 2*i+1 (forward) / 2*i+2 (backward) marks w visited by the
	// i-th hub's BFS; avoids clearing a visited array per hub.
	stamp := make([]uint32, n)
	for i, v := range vs {
		r := uint32(i)
		// Forward BFS: v reaches u ⇒ candidate hub entry v ∈ Lin(u).
		fs := uint32(2*i + 1)
		queue = queue[:0]
		queue = append(queue, v)
		stamp[v] = fs
		for qi := 0; qi < len(queue); qi++ {
			opts.Check.Tick()
			u := queue[qi]
			if u != v {
				if buildCovered(bout, bin, ix.rank, v, u) {
					continue // pruned: higher-priority hub certifies (v,u)
				}
				bin.Append(int(u), r)
			}
			for _, w := range g.Succ(u) {
				if stamp[w] != fs && ix.rank[w] > r {
					stamp[w] = fs
					queue = append(queue, w)
				}
			}
		}
		// Backward BFS: u reaches v ⇒ candidate v ∈ Lout(u).
		bs := uint32(2*i + 2)
		queue = queue[:0]
		queue = append(queue, v)
		stamp[v] = bs
		for qi := 0; qi < len(queue); qi++ {
			opts.Check.Tick()
			u := queue[qi]
			if u != v {
				if buildCovered(bout, bin, ix.rank, u, v) {
					continue
				}
				bout.Append(int(u), r)
			}
			for _, w := range g.Pred(u) {
				if stamp[w] != bs && ix.rank[w] > r {
					stamp[w] = bs
					queue = append(queue, w)
				}
			}
		}
	}
	ix.in = bin.Freeze(opts.Enc)
	ix.out = bout.Freeze(opts.Enc)
	bin.Release()
	bout.Release()
	ix.refreshStats()
	ix.stats.BuildTime = time.Since(start)
	return ix
}

func (ix *Index) refreshStats() {
	fin, fout := ix.in.Footprint(), ix.out.Footprint()
	ix.stats.Entries = ix.in.Entries() + ix.out.Entries()
	ix.stats.Bytes = fin.Total() + fout.Total() + len(ix.rank)*4
}

// buildCovered reports whether the partial labels accumulating in the
// builders already certify s → t, including the s ∈ Lin(t) / t ∈ Lout(s)
// hub-is-endpoint cases.
func buildCovered(bout, bin *labelstore.Builder, rank []uint32, s, t graph.V) bool {
	if s == t {
		return true
	}
	return labelstore.CoverRows(bout.Row(int(s)), bin.Row(int(t)), rank[s], rank[t])
}

// covered reports whether the frozen labels certify s → t (the three
// query cases of §3.2). Raw stores merge row slices directly; varint
// stores merge through cursors — both 0 allocs.
func (ix *Index) covered(s, t graph.V) bool {
	if s == t {
		return true
	}
	rs, rt := ix.rank[s], ix.rank[t]
	if ls, ok := ix.out.Row(int(s)); ok {
		lt, _ := ix.in.Row(int(t))
		return labelstore.CoverRows(ls, lt, rs, rt)
	}
	return labelstore.CoverCursors(ix.out.Cursor(int(s)), ix.in.Cursor(int(t)), rs, rt)
}

// Name implements core.Index.
func (ix *Index) Name() string { return ix.name }

// N returns the number of vertices the labels cover — snapshot loaders
// use it to detect pairing a snapshot with the wrong graph.
func (ix *Index) N() int { return len(ix.rank) }

// Reach answers Qr(s, t) by hub intersection — a pure index lookup
// (complete index).
func (ix *Index) Reach(s, t graph.V) bool { return ix.covered(s, t) }

// Stats implements core.Index.
func (ix *Index) Stats() core.Stats { return ix.stats }

// Sizes implements core.Sized: offset tables, label payloads, and the
// rank array split out.
func (ix *Index) Sizes() core.SizeBreakdown {
	fin, fout := ix.in.Footprint(), ix.out.Footprint()
	return core.SizeBreakdown{
		Offsets: fin.Offsets + fout.Offsets,
		Labels:  fin.Labels + fout.Labels,
		Aux:     len(ix.rank) * 4,
	}
}

// Encoding reports the label encoding the frozen stores use.
func (ix *Index) Encoding() labelstore.Encoding { return ix.in.Encoding() }

// LabelSizes returns (total Lin entries, total Lout entries); E2 reports
// them against the full TC size.
func (ix *Index) LabelSizes() (in, out int) {
	return ix.in.Entries(), ix.out.Entries()
}
