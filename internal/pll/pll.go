// Package pll implements pruned 2-hop labeling (§3.2): every vertex v gets
// Lin(v) and Lout(v) hub sets; Qr(s, t) holds iff s ∈ Lin(t), t ∈ Lout(s),
// or Lin(t) ∩ Lout(s) ≠ ∅ (the paper's three cases). Labels are built by
// forward and backward pruned BFSs from the vertices in a strict total
// order: the BFS from v adds hub v only where no higher-priority hub
// already certifies the pair, and terminates branches at such vertices.
//
// The package implements the TOL-framework observation of §3.2 that TFL,
// DL and PLL are instantiations of the same algorithm under different
// total orders:
//
//	OrderDegree        — DL [25] / PLL [49] (proven equivalent in [25])
//	OrderTopological   — TFL-style topological priority [13] (DAG input)
//	OrderDegreeProduct — the in×out-degree ranking used by TOL [55]
//
// The index is complete and applies to general (cyclic) graphs directly —
// "unlike the tree-cover index, the 2-hop index can be directly applied to
// general graphs".
package pll

import (
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/order"
)

// Order selects the total order instantiation.
type Order int

// Total-order instantiations.
const (
	OrderDegree Order = iota
	OrderTopological
	OrderDegreeProduct
)

// Options configures the labeling.
type Options struct {
	Order Order
	// Name overrides the reported index name (e.g. "DL", "TFL"); default
	// derives from the order.
	Name string
	// Check is an optional cancellation checkpoint ticked once per BFS
	// dequeue of the labeling passes; nil runs unchecked.
	Check *core.Check
}

// Index is the pruned 2-hop label index.
type Index struct {
	name string
	// in[v] and out[v] hold hub ranks, ascending (hubs are identified by
	// their rank in the total order; lower rank = higher priority).
	in, out [][]uint32
	rank    []uint32
	stats   core.Stats
}

// New builds the pruned 2-hop labeling of g under the configured order.
func New(g *graph.Digraph, opts Options) *Index {
	start := time.Now()
	n := g.N()
	var vs []graph.V
	name := opts.Name
	switch opts.Order {
	case OrderTopological:
		topo, ok := order.Topological(g)
		if ok {
			// Prioritize by a mix: topological position folded from both
			// ends, approximating TFL's level folding: highest priority to
			// the vertices in the middle "folds" is complex; plain
			// topological order is the documented simplification.
			vs = topo
		} else {
			// Cyclic input: fall back to degree order (TFL assumes DAGs).
			vs = order.ByDegreeDesc(g)
		}
		if name == "" {
			name = "TFL"
		}
	case OrderDegreeProduct:
		vs = order.ByDegreeProductDesc(g)
		if name == "" {
			name = "TOL-order"
		}
	default:
		vs = order.ByDegreeDesc(g)
		if name == "" {
			name = "PLL"
		}
	}
	ix := &Index{
		name: name,
		in:   make([][]uint32, n),
		out:  make([][]uint32, n),
		rank: make([]uint32, n),
	}
	for i, v := range vs {
		ix.rank[v] = uint32(i)
	}
	queue := make([]graph.V, 0, n)
	// stamp[w] == 2*i+1 (forward) / 2*i+2 (backward) marks w visited by the
	// i-th hub's BFS; avoids clearing a visited array per hub.
	stamp := make([]uint32, n)
	for i, v := range vs {
		r := uint32(i)
		// Forward BFS: v reaches u ⇒ candidate hub entry v ∈ Lin(u).
		fs := uint32(2*i + 1)
		queue = queue[:0]
		queue = append(queue, v)
		stamp[v] = fs
		for qi := 0; qi < len(queue); qi++ {
			opts.Check.Tick()
			u := queue[qi]
			if u != v {
				if ix.covered(v, u) {
					continue // pruned: higher-priority hub certifies (v,u)
				}
				ix.in[u] = append(ix.in[u], r)
			}
			for _, w := range g.Succ(u) {
				if stamp[w] != fs && ix.rank[w] > r {
					stamp[w] = fs
					queue = append(queue, w)
				}
			}
		}
		// Backward BFS: u reaches v ⇒ candidate v ∈ Lout(u).
		bs := uint32(2*i + 2)
		queue = queue[:0]
		queue = append(queue, v)
		stamp[v] = bs
		for qi := 0; qi < len(queue); qi++ {
			opts.Check.Tick()
			u := queue[qi]
			if u != v {
				if ix.covered(u, v) {
					continue
				}
				ix.out[u] = append(ix.out[u], r)
			}
			for _, w := range g.Pred(u) {
				if stamp[w] != bs && ix.rank[w] > r {
					stamp[w] = bs
					queue = append(queue, w)
				}
			}
		}
	}
	entries := 0
	for v := 0; v < n; v++ {
		entries += len(ix.in[v]) + len(ix.out[v])
	}
	ix.stats = core.Stats{
		Entries:   entries,
		Bytes:     entries*4 + n*4,
		BuildTime: time.Since(start),
	}
	return ix
}

// covered reports whether the current labels already certify s → t,
// including the s ∈ Lin(t) / t ∈ Lout(s) hub-is-endpoint cases.
func (ix *Index) covered(s, t graph.V) bool {
	if s == t {
		return true
	}
	ls, lt := ix.out[s], ix.in[t]
	rs, rt := ix.rank[s], ix.rank[t]
	i, j := 0, 0
	for i < len(ls) && j < len(lt) {
		switch {
		case ls[i] == lt[j]:
			return true
		case ls[i] < lt[j]:
			if ls[i] == rt {
				return true // t ∈ Lout(s)
			}
			i++
		default:
			if lt[j] == rs {
				return true // s ∈ Lin(t)
			}
			j++
		}
	}
	for ; i < len(ls); i++ {
		if ls[i] == rt {
			return true
		}
	}
	for ; j < len(lt); j++ {
		if lt[j] == rs {
			return true
		}
	}
	return false
}

// Name implements core.Index.
func (ix *Index) Name() string { return ix.name }

// Reach answers Qr(s, t) by hub intersection — a pure index lookup
// (complete index).
func (ix *Index) Reach(s, t graph.V) bool { return ix.covered(s, t) }

// Stats implements core.Index.
func (ix *Index) Stats() core.Stats { return ix.stats }

// LabelSizes returns (total Lin entries, total Lout entries); E2 reports
// them against the full TC size.
func (ix *Index) LabelSizes() (in, out int) {
	for v := range ix.in {
		in += len(ix.in[v])
		out += len(ix.out[v])
	}
	return
}
