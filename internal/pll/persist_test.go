package pll

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/tc"
)

func TestPersistRoundTrip(t *testing.T) {
	g := gen.ErdosRenyi(gen.Config{N: 120, M: 480, Seed: 1})
	ix := New(g, Options{})
	var buf bytes.Buffer
	n, err := ix.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n <= 0 || int(n) != buf.Len() {
		t.Fatalf("WriteTo reported %d bytes, buffer has %d", n, buf.Len())
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name() != ix.Name() {
		t.Errorf("name %q -> %q", ix.Name(), back.Name())
	}
	if back.Stats().Entries != ix.Stats().Entries {
		t.Errorf("entries %d -> %d", ix.Stats().Entries, back.Stats().Entries)
	}
	oracle := tc.NewClosure(g)
	for s := graph.V(0); int(s) < g.N(); s++ {
		for tt := graph.V(0); int(tt) < g.N(); tt++ {
			if back.Reach(s, tt) != oracle.Reach(s, tt) {
				t.Fatalf("deserialized index wrong at (%d,%d)", s, tt)
			}
		}
	}
}

func TestPersistErrors(t *testing.T) {
	if _, err := Read(strings.NewReader("")); err == nil {
		t.Error("empty stream should fail")
	}
	if _, err := Read(strings.NewReader("NOPE....")); err == nil {
		t.Error("bad magic should fail")
	}
	// Truncated stream.
	g := gen.RandomDAG(gen.Config{N: 20, M: 40, Seed: 2})
	ix := New(g, Options{})
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := Read(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated stream should fail")
	}
}
