package pll

import (
	"bytes"
	"strings"
	"testing"

	"os"
	"path/filepath"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/labelstore"
	"repro/internal/persist"
	"repro/internal/tc"
)

func TestPersistRoundTrip(t *testing.T) {
	g := gen.ErdosRenyi(gen.Config{N: 120, M: 480, Seed: 1})
	ix := New(g, Options{})
	var buf bytes.Buffer
	n, err := ix.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n <= 0 || int(n) != buf.Len() {
		t.Fatalf("WriteTo reported %d bytes, buffer has %d", n, buf.Len())
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name() != ix.Name() {
		t.Errorf("name %q -> %q", ix.Name(), back.Name())
	}
	if back.Stats().Entries != ix.Stats().Entries {
		t.Errorf("entries %d -> %d", ix.Stats().Entries, back.Stats().Entries)
	}
	oracle := tc.NewClosure(g)
	for s := graph.V(0); int(s) < g.N(); s++ {
		for tt := graph.V(0); int(tt) < g.N(); tt++ {
			if back.Reach(s, tt) != oracle.Reach(s, tt) {
				t.Fatalf("deserialized index wrong at (%d,%d)", s, tt)
			}
		}
	}
}

func TestPersistErrors(t *testing.T) {
	if _, err := Read(strings.NewReader("")); err == nil {
		t.Error("empty stream should fail")
	}
	if _, err := Read(strings.NewReader("NOPE....")); err == nil {
		t.Error("bad magic should fail")
	}
	// Truncated stream.
	g := gen.RandomDAG(gen.Config{N: 20, M: 40, Seed: 2})
	ix := New(g, Options{})
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := Read(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated stream should fail")
	}
}

func TestVarintEncodingConformance(t *testing.T) {
	// A varint-encoded index must answer identically to raw on every pair.
	g := gen.ErdosRenyi(gen.Config{N: 120, M: 480, Seed: 3})
	raw := New(g, Options{})
	vi := New(g, Options{Enc: labelstore.Varint})
	if vi.Encoding() != labelstore.Varint {
		t.Fatalf("encoding = %v", vi.Encoding())
	}
	if vi.Stats().Entries != raw.Stats().Entries {
		t.Fatalf("entries raw %d varint %d", raw.Stats().Entries, vi.Stats().Entries)
	}
	if vi.Stats().Bytes >= raw.Stats().Bytes {
		t.Errorf("varint bytes %d not below raw %d", vi.Stats().Bytes, raw.Stats().Bytes)
	}
	for s := graph.V(0); int(s) < g.N(); s++ {
		for tt := graph.V(0); int(tt) < g.N(); tt++ {
			if raw.Reach(s, tt) != vi.Reach(s, tt) {
				t.Fatalf("varint index diverges at (%d,%d)", s, tt)
			}
		}
	}
}

func TestPersistMappedRoundTrip(t *testing.T) {
	g := gen.ErdosRenyi(gen.Config{N: 120, M: 480, Seed: 4})
	oracle := tc.NewClosure(g)
	for _, enc := range []labelstore.Encoding{labelstore.Raw, labelstore.Varint} {
		ix := New(g, Options{Enc: enc})

		// v2 through the streaming decoder.
		var buf bytes.Buffer
		if _, err := ix.WriteMapped(&buf); err != nil {
			t.Fatal(err)
		}
		dec, err := Read(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%v: streaming v2 read: %v", enc, err)
		}

		// v2 through the mapped loader.
		path := filepath.Join(t.TempDir(), "pll.rix")
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		m, err := persist.OpenMapped(path)
		if err != nil {
			t.Fatalf("%v: open mapped: %v", enc, err)
		}
		mapped, err := FromMapped(m)
		if err != nil {
			t.Fatalf("%v: FromMapped: %v", enc, err)
		}
		if mapped.Name() != ix.Name() || mapped.Stats().Entries != ix.Stats().Entries {
			t.Fatalf("%v: mapped meta mismatch", enc)
		}
		for s := graph.V(0); int(s) < g.N(); s++ {
			for tt := graph.V(0); int(tt) < g.N(); tt++ {
				want := oracle.Reach(s, tt)
				if dec.Reach(s, tt) != want || mapped.Reach(s, tt) != want {
					t.Fatalf("%v: v2 index wrong at (%d,%d)", enc, s, tt)
				}
			}
		}

		// Every strict prefix of the v2 stream errors, never panics.
		for cut := 0; cut < buf.Len(); cut += 211 {
			if _, err := Read(bytes.NewReader(buf.Bytes()[:cut])); err == nil {
				t.Fatalf("%v: truncated v2 stream of %d bytes accepted", enc, cut)
			}
		}
	}
}
