package lcrbloom

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/indextest"
	"repro/internal/labelset"
	"repro/internal/tc"
)

func TestConformance(t *testing.T) {
	indextest.CheckLCRIndex(t, func(g *graph.Digraph) core.LCRIndex {
		return New(g, Options{Bits: 128, Seed: 1})
	})
}

func TestTinyFiltersStillExact(t *testing.T) {
	indextest.CheckLCRIndex(t, func(g *graph.Digraph) core.LCRIndex {
		return New(g, Options{Bits: 64, Seed: 2})
	})
}

func TestNoFalseNegativesOnLookup(t *testing.T) {
	// The defining property (§5): a decided lookup answer is never a
	// denial of a real constrained path.
	g := gen.Zipf(gen.ErdosRenyi(gen.Config{N: 120, M: 480, Seed: 3}), 6, 0.7, 4)
	ix := New(g, Options{Bits: 128, Seed: 5})
	oracle := tc.NewGTC(g)
	rng := rand.New(rand.NewSource(6))
	for q := 0; q < 5000; q++ {
		s := graph.V(rng.Intn(g.N()))
		tt := graph.V(rng.Intn(g.N()))
		mask := labelset.Set(rng.Int63n(1 << 6))
		want := s == tt || oracle.ReachLC(s, tt, mask)
		if !want {
			continue
		}
		if r, dec := ix.TryReachLC(s, tt, mask); dec && !r {
			t.Fatalf("false negative at (%d,%d,%b)", s, tt, mask)
		}
	}
}

func TestNegativeQueriesOftenDecided(t *testing.T) {
	// On sparse label masks most negative queries should terminate on
	// lookups alone — the point of the prototype.
	g := gen.Zipf(gen.ErdosRenyi(gen.Config{N: 300, M: 900, Seed: 7}), 8, 1.0, 8)
	ix := New(g, Options{Bits: 256, Seed: 9})
	oracle := tc.NewGTC(g)
	rng := rand.New(rand.NewSource(10))
	decided, negatives := 0, 0
	for q := 0; q < 3000; q++ {
		s := graph.V(rng.Intn(g.N()))
		tt := graph.V(rng.Intn(g.N()))
		if s == tt {
			continue
		}
		mask := labelset.Of(graph.Label(rng.Intn(8)), graph.Label(rng.Intn(8)))
		if oracle.ReachLC(s, tt, mask) {
			continue
		}
		negatives++
		if _, dec := ix.TryReachLC(s, tt, mask); dec {
			decided++
		}
	}
	if negatives == 0 {
		t.Fatal("workload produced no negative queries")
	}
	if decided*2 < negatives {
		t.Errorf("only %d/%d negative queries decided by lookups", decided, negatives)
	}
}

func TestStatsAndName(t *testing.T) {
	g := graph.Fig1Labeled()
	ix := New(g, Options{})
	if ix.Name() != "LCR-Bloom" {
		t.Error("name")
	}
	st := ix.Stats()
	// |L|+1 = 4 filter families.
	if st.Entries != 2*g.N()*4 {
		t.Errorf("entries = %d", st.Entries)
	}
}
