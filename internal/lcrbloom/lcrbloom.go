// Package lcrbloom prototypes the paper's §5 open challenge: "it would be
// interesting to have a partial index without false negatives for
// path-constrained reachability queries". No such index exists in the
// surveyed literature (the landmark index is partial *without false
// positives*, the wrong direction for negative-heavy workloads).
//
// The construction transplants BFL's approximate-TC idea (§3.3) to the
// labeled setting. Observe that for allowed label sets A ⊆ A', every
// A-constrained path is also A'-constrained; contrapositively, if t is
// unreachable from s in the subgraph G₋ℓ that drops all ℓ-labeled edges,
// then t is unreachable under every allowed set A with ℓ ∉ A. The index
// therefore stores |L|+1 Bloom-filter families — one on the full graph
// and one on each drop-one-label subgraph — and answers Qr(s, t, A) with:
//
//   - definite negative: the full-graph filter rejects, or the G₋ℓ filter
//     rejects for some ℓ ∉ A (all sound necessary conditions ⇒ no false
//     negatives);
//   - otherwise: label-constrained BFS guided by the same filters (every
//     frontier vertex v is pruned when some applicable filter proves v
//     cannot reach t).
//
// Like BFL, the index is linear-size, builds in O((|L|+1)·(n+m)) time,
// and inherits §5's key property: negative queries — the common case —
// can terminate on lookups alone.
package lcrbloom

import (
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/labelset"
	"repro/internal/order"
	"repro/internal/scc"
	"repro/internal/scratch"
)

// Options configures the index.
type Options struct {
	// Bits is the Bloom filter width per family (rounded up to 64).
	// Default 256.
	Bits int
	// Seed scrambles the vertex hash.
	Seed int64
}

func (o *Options) defaults() {
	if o.Bits <= 0 {
		o.Bits = 256
	}
	o.Bits = (o.Bits + 63) &^ 63
}

// family is one filter pair (forward/backward) built on one subgraph.
type family struct {
	out, in []uint64 // n*words each
}

// Index is the labeled-Bloom-filter partial LCR index.
type Index struct {
	g     *graph.Digraph
	words int
	// full is the family on the whole graph; drop[ℓ] on G₋ℓ.
	full  family
	drop  []family
	seed  uint64
	stats core.Stats
}

// New builds the index over a labeled digraph.
func New(g *graph.Digraph, opts Options) *Index {
	opts.defaults()
	start := time.Now()
	ix := &Index{
		g:     g,
		words: opts.Bits / 64,
		seed:  uint64(opts.Seed)*0x9e3779b97f4a7c15 + 0x8e9d5aab,
	}
	ix.full = ix.buildFamily(g, labelset.Set(^uint64(0)))
	L := g.Labels()
	ix.drop = make([]family, L)
	for l := 0; l < L; l++ {
		mask := labelset.Set(^uint64(0)) &^ labelset.Of(graph.Label(l))
		ix.drop[l] = ix.buildFamily(g, mask)
	}
	n := g.N()
	ix.stats = core.Stats{
		Entries:   2 * n * (L + 1),
		Bytes:     2 * n * ix.words * 8 * (L + 1),
		BuildTime: time.Since(start),
	}
	return ix
}

// buildFamily computes forward/backward Bloom filters over the subgraph
// keeping only edges whose label is in mask, via that subgraph's
// condensation (handles cycles).
func (ix *Index) buildFamily(g *graph.Digraph, mask labelset.Set) family {
	n := g.N()
	w := ix.words
	// Subgraph restricted to mask.
	b := graph.NewBuilder(n)
	g.Edges(func(e graph.Edge) bool {
		if mask.Has(e.Label) {
			b.AddEdge(e.From, e.To)
		}
		return true
	})
	sub := b.MustFreeze()
	cond := scc.Condense(sub)
	dag := cond.DAG
	nc := dag.N()
	cOut := make([]uint64, nc*w)
	cIn := make([]uint64, nc*w)
	for v := 0; v < n; v++ {
		c := int(cond.Comp[v])
		word, bit := ix.hash(graph.V(v))
		cOut[c*w+word] |= bit
		cIn[c*w+word] |= bit
	}
	topo, _ := order.Topological(dag)
	for i := len(topo) - 1; i >= 0; i-- {
		v := int(topo[i])
		for _, u := range dag.Succ(graph.V(v)) {
			for j := 0; j < w; j++ {
				cOut[v*w+j] |= cOut[int(u)*w+j]
			}
		}
	}
	for _, v := range topo {
		for _, u := range dag.Pred(v) {
			for j := 0; j < w; j++ {
				cIn[int(v)*w+j] |= cIn[int(u)*w+j]
			}
		}
	}
	f := family{out: make([]uint64, n*w), in: make([]uint64, n*w)}
	for v := 0; v < n; v++ {
		c := int(cond.Comp[v])
		copy(f.out[v*w:(v+1)*w], cOut[c*w:(c+1)*w])
		copy(f.in[v*w:(v+1)*w], cIn[c*w:(c+1)*w])
	}
	return f
}

func (ix *Index) hash(v graph.V) (int, uint64) {
	x := (uint64(v) + 1) * ix.seed
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	pos := x % uint64(ix.words*64)
	return int(pos / 64), 1 << (pos % 64)
}

// rejects reports whether family f proves s cannot reach t (in f's
// subgraph): Lout(t) ⊄ Lout(s) or Lin(s) ⊄ Lin(t).
func (f *family) rejects(s, t graph.V, w int) bool {
	so := f.out[int(s)*w : (int(s)+1)*w]
	to := f.out[int(t)*w : (int(t)+1)*w]
	for j := range so {
		if to[j]&^so[j] != 0 {
			return true
		}
	}
	si := f.in[int(s)*w : (int(s)+1)*w]
	ti := f.in[int(t)*w : (int(t)+1)*w]
	for j := range si {
		if si[j]&^ti[j] != 0 {
			return true
		}
	}
	return false
}

// Name implements core.LCRIndex.
func (ix *Index) Name() string { return "LCR-Bloom" }

// TryReachLC gives the lookup-only answer: (false, true) on a definite
// negative, (_, false) when traversal is needed. There is no definite
// positive — this index is the mirror image of the landmark index.
func (ix *Index) TryReachLC(s, t graph.V, allowed labelset.Set) (bool, bool) {
	if s == t {
		return true, true
	}
	if ix.full.rejects(s, t, ix.words) {
		return false, true
	}
	for l := range ix.drop {
		if !allowed.Has(graph.Label(l)) && ix.drop[l].rejects(s, t, ix.words) {
			return false, true
		}
	}
	return false, false
}

// ReachLC answers exactly: filter cuts plus filter-guided constrained BFS.
func (ix *Index) ReachLC(s, t graph.V, allowed labelset.Set) bool {
	if s == t {
		return true
	}
	if _, dec := ix.TryReachLC(s, t, allowed); dec {
		return false
	}
	// Hoist the families applicable to this query's allowed set; the
	// frontier check below then scans only those.
	fams := []*family{&ix.full}
	for l := range ix.drop {
		if !allowed.Has(graph.Label(l)) {
			fams = append(fams, &ix.drop[l])
		}
	}
	sc := scratch.Get(ix.g.N())
	defer scratch.Put(sc)
	visited := sc.Visited()
	visited.Set(int(s))
	sc.Queue = append(sc.Queue, s)
	for qi := 0; qi < len(sc.Queue); qi++ {
		v := sc.Queue[qi]
		succ := ix.g.Succ(v)
		labs := ix.g.SuccLabels(v)
	next:
		for i, w := range succ {
			if !allowed.Has(labs[i]) {
				continue
			}
			if w == t {
				return true
			}
			if visited.Test(int(w)) {
				continue
			}
			visited.Set(int(w))
			// Prune w when some applicable filter proves it cannot reach
			// t (sound: w→t under A implies no applicable filter rejects).
			for _, f := range fams {
				if f.rejects(w, t, ix.words) {
					continue next
				}
			}
			sc.Queue = append(sc.Queue, w)
		}
	}
	return false
}

// Stats implements core.LCRIndex.
func (ix *Index) Stats() core.Stats { return ix.stats }
