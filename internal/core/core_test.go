package core_test

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/tc"
	"repro/internal/traversal"
)

func TestGuidedDFSNoFilter(t *testing.T) {
	// With an always-undecided filter, GuidedDFS is plain DFS.
	g := gen.ErdosRenyi(gen.Config{N: 60, M: 180, Seed: 1})
	undecided := func(u, t graph.V) (bool, bool) { return false, false }
	for s := graph.V(0); int(s) < g.N(); s += 2 {
		for tt := graph.V(0); int(tt) < g.N(); tt += 3 {
			if core.GuidedDFS(g, s, tt, undecided) != traversal.BFS(g, s, tt) {
				t.Fatalf("unfiltered GuidedDFS wrong at (%d,%d)", s, tt)
			}
		}
	}
}

func TestGuidedDFSWithOracleFilter(t *testing.T) {
	// With a perfect filter, GuidedDFS must answer without error and the
	// counting variant must expand nothing.
	g := gen.RandomDAG(gen.Config{N: 80, M: 240, Seed: 2})
	oracle := tc.NewClosure(g)
	perfect := func(u, t graph.V) (bool, bool) { return oracle.Reach(u, t), true }
	for s := graph.V(0); int(s) < g.N(); s += 3 {
		for tt := graph.V(0); int(tt) < g.N(); tt += 3 {
			got, expanded := core.CountingGuidedDFS(g, s, tt, perfect)
			if got != oracle.Reach(s, tt) {
				t.Fatalf("wrong at (%d,%d)", s, tt)
			}
			if expanded != 0 {
				t.Fatalf("perfect filter expanded %d vertices", expanded)
			}
		}
	}
}

func TestGuidedDFSSoundFilterStaysExact(t *testing.T) {
	// A randomly-decided but SOUND filter (only answers when the oracle
	// agrees) must never change results.
	g := gen.ErdosRenyi(gen.Config{N: 50, M: 200, Seed: 3})
	oracle := tc.NewClosure(g)
	rng := rand.New(rand.NewSource(4))
	flaky := func(u, t graph.V) (bool, bool) {
		if rng.Intn(3) == 0 {
			return oracle.Reach(u, t), true
		}
		return false, false
	}
	for s := graph.V(0); int(s) < g.N(); s++ {
		for tt := graph.V(0); int(tt) < g.N(); tt++ {
			if core.GuidedDFS(g, s, tt, flaky) != oracle.Reach(s, tt) {
				t.Fatalf("flaky-but-sound filter broke (%d,%d)", s, tt)
			}
		}
	}
}

type fakeIndex struct {
	oracle *tc.Closure
}

func (f *fakeIndex) Name() string            { return "fake" }
func (f *fakeIndex) Reach(s, t graph.V) bool { return f.oracle.Reach(s, t) }
func (f *fakeIndex) Stats() core.Stats       { return core.Stats{Entries: 1, Bytes: 8} }

func TestForGeneralCondensation(t *testing.T) {
	g := gen.ErdosRenyi(gen.Config{N: 70, M: 280, Seed: 5})
	built := 0
	ix := core.ForGeneral(g, func(dag *graph.Digraph) core.Index {
		built++
		// The builder must receive an acyclic graph.
		if dag.N() > g.N() {
			t.Fatal("condensation grew")
		}
		return &fakeIndex{oracle: tc.NewClosure(dag)}
	})
	if built != 1 {
		t.Fatalf("builder called %d times", built)
	}
	oracle := tc.NewClosure(g)
	for s := graph.V(0); int(s) < g.N(); s++ {
		for tt := graph.V(0); int(tt) < g.N(); tt++ {
			if ix.Reach(s, tt) != oracle.Reach(s, tt) {
				t.Fatalf("condensed reach wrong at (%d,%d)", s, tt)
			}
		}
	}
	if ix.Name() != "fake" {
		t.Error("name not forwarded")
	}
	if ix.Stats().Bytes <= 8 {
		t.Error("stats must include the component map")
	}
	// TryReach forwarding on a non-partial inner index: decided always.
	p := ix.(core.Partial)
	if r, dec := p.TryReach(0, 0); !r || !dec {
		t.Error("same-vertex TryReach")
	}
}

func TestDynGraph(t *testing.T) {
	g := graph.FromEdges(4, [][2]graph.V{{0, 1}, {1, 2}})
	d := core.NewDynGraph(g)
	if d.N() != 4 || d.M() != 2 {
		t.Fatalf("N=%d M=%d", d.N(), d.M())
	}
	if !d.HasEdge(0, 1) || d.HasEdge(1, 0) {
		t.Error("HasEdge wrong")
	}
	if !d.Insert(2, 3) || d.Insert(2, 3) {
		t.Error("Insert semantics wrong")
	}
	if d.M() != 3 {
		t.Errorf("M = %d", d.M())
	}
	if !d.Delete(0, 1) || d.Delete(0, 1) {
		t.Error("Delete semantics wrong")
	}
	if d.HasEdge(0, 1) || d.M() != 2 {
		t.Error("delete did not apply")
	}
	// Sorted adjacency after random churn.
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 500; i++ {
		u, v := graph.V(rng.Intn(4)), graph.V(rng.Intn(4))
		if u == v {
			continue
		}
		if rng.Intn(2) == 0 {
			d.Insert(u, v)
		} else {
			d.Delete(u, v)
		}
	}
	for v := graph.V(0); v < 4; v++ {
		s := d.Succ(v)
		for i := 1; i < len(s); i++ {
			if s[i-1] >= s[i] {
				t.Fatalf("succ[%d] unsorted: %v", v, s)
			}
		}
	}
	// Reverse view.
	d2 := core.NewDynGraph(g)
	r := d2.Reverse()
	if r.N() != 4 {
		t.Error("reverse N")
	}
	if len(r.Succ(1)) != 1 || r.Succ(1)[0] != 0 {
		t.Errorf("reverse adjacency wrong: %v", r.Succ(1))
	}
}

func TestUnsupportedError(t *testing.T) {
	err := error(&core.Unsupported{Op: "DeleteEdge", Index: "DBL"})
	if err.Error() != "DBL: DeleteEdge is not supported" {
		t.Errorf("message %q", err.Error())
	}
	var u *core.Unsupported
	if !errors.As(err, &u) {
		t.Error("errors.As failed")
	}
}
