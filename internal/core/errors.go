package core

import (
	"errors"
	"fmt"
	"runtime/debug"

	"repro/internal/graph"
	"repro/internal/par"
)

// The typed error set of the hardened serving layer. Every public entry
// point (Build*, DB queries, BatchReach*) reports failures by wrapping one
// of these sentinels, so callers branch with errors.Is instead of string
// matching, and no malformed input or contained index bug surfaces as a
// process crash.
var (
	// ErrVertexRange reports a query or build argument naming a vertex
	// the graph does not have.
	ErrVertexRange = errors.New("vertex out of range")
	// ErrBadOptions reports invalid build options or an unusable build
	// request (negative K/Bits/MaxSeq/Workers, unknown kind, LCR build
	// on an unlabeled graph, out-of-range labels).
	ErrBadOptions = errors.New("bad options")
	// ErrBadQuery reports a malformed path-constraint expression, or a
	// constraint that cannot be answered on this graph (a genuinely
	// labeled constraint over an unlabeled graph).
	ErrBadQuery = errors.New("bad query")
	// ErrBuildCanceled reports a build aborted by its context at a
	// cooperative checkpoint.
	ErrBuildCanceled = errors.New("build canceled")
	// ErrIndexPanic reports a panic inside an index build or query that
	// was contained at the public API boundary.
	ErrIndexPanic = errors.New("index panic")
)

// CheckVertex returns ErrVertexRange (wrapped) unless v < n.
func CheckVertex(n int, v graph.V) error {
	if int(v) >= n {
		return fmt.Errorf("%w: vertex %d (graph has %d vertices)", ErrVertexRange, v, n)
	}
	return nil
}

// CheckPair validates both endpoints of a query against a graph of n
// vertices.
func CheckPair(n int, s, t graph.V) error {
	if err := CheckVertex(n, s); err != nil {
		return err
	}
	return CheckVertex(n, t)
}

// Recover is the containment boundary deferred at every public build and
// query entry point: it converts a panic escaping the index machinery into
// a typed error assigned through errp. Checkpoint-cancellation sentinels
// become ErrBuildCanceled; everything else — including panics recovered
// inside par pool workers and re-raised on the caller goroutine — becomes
// ErrIndexPanic with the originating stack preserved in the message.
//
//	func Build(...) (ix Index, err error) {
//	    defer core.Recover(&err)
//	    ...
//	}
func Recover(errp *error) {
	if r := recover(); r != nil {
		*errp = PanicError(r)
	}
}

// PanicError maps a recovered panic value to the typed error Recover
// assigns. Exposed so boundaries with extra bookkeeping (metrics counters)
// can recover themselves and still classify identically.
func PanicError(r any) error {
	var stack []byte
	// Unwrap panics transported across par pool goroutines; nested pools
	// wrap repeatedly, the innermost stack is the interesting one.
	for {
		if wp, ok := r.(par.WorkerPanic); ok {
			r, stack = wp.Value, wp.Stack
			continue
		}
		break
	}
	if c, ok := r.(canceled); ok {
		return fmt.Errorf("%w (checkpoint %s)", ErrBuildCanceled, c.site)
	}
	if stack == nil {
		stack = debug.Stack()
	}
	return fmt.Errorf("%w: %v\n%s", ErrIndexPanic, r, stack)
}
