package core

import (
	"context"
	"sync/atomic"

	"repro/internal/faultinject"
)

// TickStride is how many checkpoint ticks pass between context polls. A
// tick is placed on the granularity of one unit of builder work (one BFS
// dequeue, one source vertex, one cover candidate), so a canceled build
// stops within a bounded, deterministic amount of extra work instead of
// running to completion.
const TickStride = 64

// Check is a cooperative cancellation checkpoint threaded through the
// expensive builders. A nil *Check is valid and makes Tick a no-op — the
// context-free Build path passes nil and pays a single predictable branch
// per tick. Cancellation surfaces as a panic with a private sentinel that
// Recover at the public boundary converts to ErrBuildCanceled; this keeps
// the deep builder loops free of error plumbing while still aborting
// promptly, and the par pool's panic containment carries the sentinel out
// of worker goroutines.
//
// Check also doubles as the builders' fault-injection surface: every tick
// passes through faultinject.Hit(site), so the stress harness can panic a
// build in any phase or cancel it at an exact checkpoint ordinal.
type Check struct {
	done <-chan struct{}
	site string
	n    atomic.Uint64
}

// NewCheck builds the checkpoint for one build under ctx, named by site
// (e.g. "build/2hop"). It returns nil — the free no-op checkpoint — when
// the context can never be canceled and fault injection is disarmed.
func NewCheck(ctx context.Context, site string) *Check {
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	if done == nil && !faultinject.Enabled() {
		return nil
	}
	return &Check{done: done, site: site}
}

// canceled is the panic sentinel Tick raises on a canceled context;
// Recover maps it to ErrBuildCanceled.
type canceled struct{ site string }

// Tick marks one unit of build work. Nil-safe. Every TickStride ticks it
// polls the context and panics with the cancellation sentinel if the
// context is done. Fault injection hits on every tick, so "cancel at
// checkpoint N" plans are exact, not stride-quantized.
func (c *Check) Tick() {
	if c == nil {
		return
	}
	faultinject.Hit(c.site)
	if c.n.Add(1)%TickStride != 0 {
		return
	}
	if c.done != nil {
		select {
		case <-c.done:
			panic(canceled{site: c.site})
		default:
		}
	}
}

// Site reports the checkpoint's name; builders that fork sub-phases can
// log or nest on it.
func (c *Check) Site() string {
	if c == nil {
		return ""
	}
	return c.site
}
