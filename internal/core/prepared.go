package core

import (
	"sync"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/scc"
)

// Prepared memoizes the shared preprocessing of one graph — today the SCC
// condensation of §3.1, the step every DAG-only index repeats verbatim —
// so a caller constructing many indexes over the same *graph.Digraph
// (reach.NewDB, the experiment harness, A/B index comparisons) condenses
// exactly once instead of once per kind. The memo is explicit rather than
// a global keyed by graph pointer: it pins no graph beyond the caller's
// own reference and needs no invalidation protocol (a Digraph is
// immutable after Freeze, so the condensation can never go stale).
//
// A Prepared is safe for concurrent use; the first Condensation caller
// computes, later (and concurrently blocked) callers share the result.
type Prepared struct {
	g    *graph.Digraph
	once sync.Once
	cond *scc.Condensation
	hits atomic.Int64
}

// NewPrepared returns an empty preprocessing memo for g. Nothing is
// computed until the first index build (or Condensation call) needs it,
// so preparing a graph whose indexes all accept general input costs two
// words.
func NewPrepared(g *graph.Digraph) *Prepared {
	return &Prepared{g: g}
}

// Graph returns the graph this memo is bound to; builders use it to
// reject a Prepared that was created for a different graph.
func (p *Prepared) Graph() *graph.Digraph { return p.g }

// Condensation returns the memoized SCC condensation, computing it on
// first use. cached reports whether this call was served from the memo —
// the value recorded as the scc/condense span's `cached` attribute.
func (p *Prepared) Condensation() (cond *scc.Condensation, cached bool) {
	computed := false
	p.once.Do(func() {
		p.cond = scc.Condense(p.g)
		computed = true
	})
	if computed {
		return p.cond, false
	}
	p.hits.Add(1)
	return p.cond, true
}

// CondenseSpans is Condensation with build-phase observability: the
// first call records an "scc/condense" span timing the real computation
// (cached=false); every later call records a zero-length span with
// cached=true, so the per-build timeline stays complete while the shared
// cost appears exactly once.
func (p *Prepared) CondenseSpans(spans *obs.Spans) *scc.Condensation {
	computed := false
	p.once.Do(func() {
		computed = true
		end := spans.StartCached("scc/condense", false)
		p.cond = scc.Condense(p.g)
		end()
	})
	if !computed {
		p.hits.Add(1)
		spans.StartCached("scc/condense", true)()
	}
	return p.cond
}

// Hits reports how many Condensation calls were served from the memo
// (i.e. all calls after the first). The condensation-once tests assert
// on it.
func (p *Prepared) Hits() int64 { return p.hits.Load() }
