package core

import (
	"sort"

	"repro/internal/graph"
)

// Adjacency is the minimal graph view the guided-traversal engine needs.
// Satisfied by *graph.Digraph and by *DynGraph.
type Adjacency interface {
	N() int
	Succ(v graph.V) []graph.V
}

// DynGraph is a mutable adjacency overlay used by the dynamic indexes
// (DAGGER, TOL, DBL, DLCR): plain successor/predecessor slices seeded from
// an immutable CSR graph, supporting edge insertion and deletion.
type DynGraph struct {
	succ, pred [][]graph.V
	m          int
}

// NewDynGraph copies g's adjacency into a mutable form.
func NewDynGraph(g *graph.Digraph) *DynGraph {
	n := g.N()
	d := &DynGraph{succ: make([][]graph.V, n), pred: make([][]graph.V, n), m: g.M()}
	for v := 0; v < n; v++ {
		d.succ[v] = append([]graph.V(nil), g.Succ(graph.V(v))...)
		d.pred[v] = append([]graph.V(nil), g.Pred(graph.V(v))...)
	}
	return d
}

// N returns the vertex count.
func (d *DynGraph) N() int { return len(d.succ) }

// M returns the current edge count.
func (d *DynGraph) M() int { return d.m }

// Succ returns the successors of v (sorted).
func (d *DynGraph) Succ(v graph.V) []graph.V { return d.succ[v] }

// Pred returns the predecessors of v (sorted).
func (d *DynGraph) Pred(v graph.V) []graph.V { return d.pred[v] }

// HasEdge reports whether (u, v) is present.
func (d *DynGraph) HasEdge(u, v graph.V) bool {
	s := d.succ[u]
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	return i < len(s) && s[i] == v
}

// Insert adds edge (u, v); reports whether it was new.
func (d *DynGraph) Insert(u, v graph.V) bool {
	if !d.insertInto(&d.succ[u], v) {
		return false
	}
	d.insertInto(&d.pred[v], u)
	d.m++
	return true
}

// Delete removes edge (u, v); reports whether it was present.
func (d *DynGraph) Delete(u, v graph.V) bool {
	if !d.deleteFrom(&d.succ[u], v) {
		return false
	}
	d.deleteFrom(&d.pred[v], u)
	d.m--
	return true
}

func (d *DynGraph) insertInto(list *[]graph.V, x graph.V) bool {
	s := *list
	i := sort.Search(len(s), func(i int) bool { return s[i] >= x })
	if i < len(s) && s[i] == x {
		return false
	}
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = x
	*list = s
	return true
}

func (d *DynGraph) deleteFrom(list *[]graph.V, x graph.V) bool {
	s := *list
	i := sort.Search(len(s), func(i int) bool { return s[i] >= x })
	if i == len(s) || s[i] != x {
		return false
	}
	*list = append(s[:i], s[i+1:]...)
	return true
}

// Reverse returns an Adjacency view over predecessors.
func (d *DynGraph) Reverse() Adjacency { return reverseDyn{d} }

type reverseDyn struct{ d *DynGraph }

func (r reverseDyn) N() int                   { return r.d.N() }
func (r reverseDyn) Succ(v graph.V) []graph.V { return r.d.Pred(v) }
