package core

import (
	"repro/internal/graph"
	"repro/internal/scratch"
)

// GuidedDFS is the shared query engine of every partial index (§3.3, §5):
// a depth-first traversal from s towards t over g where each visited vertex
// v first consults the index via try:
//
//   - try(v, t) = (true, true): v definitely reaches t — a partial index
//     without false positives can terminate the whole query (the §5
//     "immediately terminate" rule).
//   - try(v, t) = (false, true): v definitely cannot reach t — the subtree
//     under v is pruned (the §5 "no false negatives" rule; this is the
//     dominant case on real negative-heavy workloads).
//   - try(v, t) = (_, false): undecided — expand v's successors.
//
// The traversal itself provides ground truth for anything the filter leaves
// undecided, so the combination is exact.
func GuidedDFS(g Adjacency, s, t graph.V, try func(u, t graph.V) (bool, bool)) bool {
	if s == t {
		return true
	}
	if r, ok := try(s, t); ok {
		return r
	}
	sc := scratch.Get(g.N())
	defer scratch.Put(sc)
	visited := sc.Visited()
	visited.Set(int(s))
	sc.Queue = append(sc.Queue, s)
	for len(sc.Queue) > 0 {
		v := sc.Queue[len(sc.Queue)-1]
		sc.Queue = sc.Queue[:len(sc.Queue)-1]
		for _, w := range g.Succ(v) {
			if w == t {
				return true
			}
			if visited.Test(int(w)) {
				continue
			}
			visited.Set(int(w))
			if r, ok := try(w, t); ok {
				if r {
					return true
				}
				continue // pruned: w cannot reach t
			}
			sc.Queue = append(sc.Queue, w)
		}
	}
	return false
}

// CountingGuidedDFS is GuidedDFS instrumented with the number of vertices
// expanded; the E1/E4 experiments report it as "traversal work".
func CountingGuidedDFS(g Adjacency, s, t graph.V, try func(u, t graph.V) (bool, bool)) (bool, int) {
	expanded := 0
	if s == t {
		return true, 0
	}
	if r, ok := try(s, t); ok {
		return r, 0
	}
	sc := scratch.Get(g.N())
	defer scratch.Put(sc)
	visited := sc.Visited()
	visited.Set(int(s))
	sc.Queue = append(sc.Queue, s)
	for len(sc.Queue) > 0 {
		v := sc.Queue[len(sc.Queue)-1]
		sc.Queue = sc.Queue[:len(sc.Queue)-1]
		expanded++
		for _, w := range g.Succ(v) {
			if w == t {
				return true, expanded
			}
			if visited.Test(int(w)) {
				continue
			}
			visited.Set(int(w))
			if r, ok := try(w, t); ok {
				if r {
					return true, expanded
				}
				continue
			}
			sc.Queue = append(sc.Queue, w)
		}
	}
	return false, expanded
}
