// Package core defines the contracts shared by every reachability index in
// this repository and the framework glue the paper's taxonomy (Tables 1–2)
// is generated from: the Index/Dynamic/Partial interfaces, per-index
// statistics, the SCC-condensation adapter that lifts DAG-only indexes to
// general graphs (§3.1, "From cyclic graphs to DAGs"), the guided-traversal
// engine used by every partial index (§3.3/§5), and a build registry.
package core

import (
	"time"

	"repro/internal/graph"
	"repro/internal/labelset"
)

// Stats describes an index's footprint, reported by the Table 1/2 harness.
type Stats struct {
	// Entries counts the index's logical units: intervals for the
	// tree-cover family, hop-label entries for the 2-hop family, sketch
	// slots for approximate TCs.
	Entries int
	// Bytes estimates resident index size.
	Bytes int
	// BuildTime is the wall-clock construction time.
	BuildTime time.Duration
}

// SizeBreakdown splits an index's resident bytes by role: CSR offset
// tables, label payloads (flat or compressed), and everything else
// (ranks, intervals, condensation maps). The obs layer exports it so a
// label-compression win is observable, not just benchmarked.
type SizeBreakdown struct {
	Offsets int
	Labels  int
	Aux     int
}

// Total is Offsets + Labels + Aux.
func (b SizeBreakdown) Total() int { return b.Offsets + b.Labels + b.Aux }

// Sized is implemented by indexes that can split their footprint.
type Sized interface {
	Sizes() SizeBreakdown
}

// SizesOf reports the size breakdown of ix, unwrapping instrumentation
// and condensation adapters (adapter overhead — the component map — is
// charged to Aux). The second result is false for indexes that don't
// break their footprint down.
func SizesOf(ix Index) (SizeBreakdown, bool) {
	aux := 0
	for ix != nil {
		if s, ok := ix.(Sized); ok {
			b := s.Sizes()
			b.Aux += aux
			return b, true
		}
		if c, ok := ix.(*condensed); ok {
			aux += len(c.cond.Comp) * 4
			ix = c.inner
			continue
		}
		if iw, ok := ix.(interface{ Inner() Index }); ok {
			ix = iw.Inner()
			continue
		}
		break
	}
	return SizeBreakdown{}, false
}

// IsCondensed reports whether ix answers through the SCC-condensation
// adapter (its inner index is over the component DAG, not the original
// graph). Snapshot code uses it to refuse persisting condensation-lifted
// labels under a format that re-binds to the original graph.
func IsCondensed(ix Index) bool {
	for ix != nil {
		if _, ok := ix.(*condensed); ok {
			return true
		}
		iw, ok := ix.(interface{ Inner() Index })
		if !ok {
			return false
		}
		ix = iw.Inner()
	}
	return false
}

// Index is a plain reachability index: Reach answers Qr(s, t).
//
// Complete indexes answer from index lookups alone; partial indexes run
// index-guided traversal internally (they additionally implement Partial).
// Reach(s, s) is always true.
type Index interface {
	// Name identifies the technique, matching the paper's Table 1 naming.
	Name() string
	Reach(s, t graph.V) bool
	Stats() Stats
}

// Partial is implemented by partial indexes (GRAIL, Ferrari, IP, BFL,
// O'Reach, PReaCH, Feline, GRIPP, SSPI, DBL): TryReach gives the
// lookup-only answer.
type Partial interface {
	Index
	// TryReach returns (answer, true) when the index alone decides the
	// query, and (_, false) when guided traversal would be needed.
	TryReach(s, t graph.V) (reachable, decided bool)
}

// Dynamic is implemented by indexes supporting online edge updates
// (TOL, DAGGER, DLCR; DBL insert-only — its DeleteEdge returns
// ErrUnsupported).
type Dynamic interface {
	Index
	InsertEdge(u, v graph.V) error
	DeleteEdge(u, v graph.V) error
}

// LCRIndex answers alternation-constrained (label-constrained) queries of
// §4.1: is there an s-t path using only labels in allowed?
type LCRIndex interface {
	Name() string
	ReachLC(s, t graph.V, allowed labelset.Set) bool
	Stats() Stats
}

// DynamicLCR is an LCRIndex supporting labeled-edge updates (DLCR).
type DynamicLCR interface {
	LCRIndex
	InsertEdge(u, v graph.V, l graph.Label) error
	DeleteEdge(u, v graph.V, l graph.Label) error
}

// RLCIndex answers concatenation-constrained queries of §4.2: is there an
// s-t path spelling (seq)^k, k >= 1? (k = 0, i.e. the Kleene-star empty
// word, is the caller's s == t short-circuit.)
type RLCIndex interface {
	Name() string
	ReachRLC(s, t graph.V, seq []graph.Label) bool
	Stats() Stats
}

// Unsupported is the error type for operations an index does not support
// (e.g. deletions on the insert-only DBL).
type Unsupported struct{ Op, Index string }

func (u *Unsupported) Error() string {
	return u.Index + ": " + u.Op + " is not supported"
}
