package core

import (
	"repro/internal/faultinject"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/scc"
)

// DAGBuilder constructs an index assuming its input is a DAG.
type DAGBuilder func(dag *graph.Digraph) Index

// ForGeneral lifts a DAG-only index builder to general graphs via SCC
// condensation (§3.1): Qr(s, t) is answered by first checking whether s and
// t share an SCC, then querying the DAG index on the component graph. This
// is the standard reduction the paper notes "most plain reachability
// indexes in literature assume".
func ForGeneral(g *graph.Digraph, build DAGBuilder) Index {
	return ForGeneralSpans(g, nil, build)
}

// ForGeneralSpans is ForGeneral with build-phase observability: the SCC
// condensation and the inner index construction are recorded as named
// spans (a nil recorder records nothing). Builders that expose their own
// internal phases nest them under "index/build".
func ForGeneralSpans(g *graph.Digraph, spans *obs.Spans, build DAGBuilder) Index {
	return ForGeneralSpansN(g, spans, 0, build)
}

// ForGeneralSpansN is ForGeneralSpans for builders with a parallel
// construction phase: the "index/build" span records the resolved worker
// count as its `workers` attribute. The SCC condensation itself (Tarjan)
// is inherently sequential and always runs serial.
func ForGeneralSpansN(g *graph.Digraph, spans *obs.Spans, workers int, build DAGBuilder) Index {
	return ForGeneralPrepared(g, spans, workers, nil, build)
}

// ForGeneralPrepared is ForGeneralSpansN with the condensation drawn from
// a shared preprocessing memo: when prep is non-nil (and bound to g), the
// SCC condensation is computed at most once across every index built over
// the same graph, and the "scc/condense" span records whether this build
// hit the memo as its `cached` attribute. A nil prep recomputes per build,
// which is the pre-memo behavior the one-off Build path keeps.
func ForGeneralPrepared(g *graph.Digraph, spans *obs.Spans, workers int, prep *Prepared, build DAGBuilder) Index {
	// Phase-level fault-injection points: every index lifted through the
	// condensation adapter (most of the catalogue) is panickable here by
	// the stress harness even if its builder has no checkpoint of its own.
	faultinject.Hit("core/scc-condense")
	var cond *scc.Condensation
	if prep != nil && prep.Graph() == g {
		cond = prep.CondenseSpans(spans)
	} else {
		endCond := spans.Start("scc/condense")
		cond = scc.Condense(g)
		endCond()
	}
	faultinject.Hit("core/index-build")
	end := spans.StartN("index/build", workers)
	inner := build(cond.DAG)
	end()
	return newCondensed(cond, inner)
}

// ForGeneralLoaded is the warm-start twin of ForGeneralPrepared: instead
// of building the DAG index it loads one from a snapshot via load, and
// records the (much cheaper) deserialization as an "index/load" span —
// so a warm-started build timeline is distinguishable from a fresh one
// by span name alone. The condensation still runs (or comes from the
// prep memo): it is derived from the immutable graph, deterministic, and
// orders of magnitude cheaper than the filter passes it replaces.
func ForGeneralLoaded(g *graph.Digraph, spans *obs.Spans, prep *Prepared, load func(dag *graph.Digraph) (Index, error)) (Index, error) {
	var cond *scc.Condensation
	if prep != nil && prep.Graph() == g {
		cond = prep.CondenseSpans(spans)
	} else {
		endCond := spans.Start("scc/condense")
		cond = scc.Condense(g)
		endCond()
	}
	end := spans.Start("index/load")
	inner, err := load(cond.DAG)
	end()
	if err != nil {
		return nil, err
	}
	return newCondensed(cond, inner), nil
}

// newCondensed wraps a DAG index in the condensation adapter, binding the
// partial/counting fast paths once.
func newCondensed(cond *scc.Condensation, inner Index) *condensed {
	c := &condensed{cond: cond, inner: inner}
	if rc, ok := inner.(ReachCounter); ok {
		c.rc = rc
	}
	if p, ok := inner.(Partial); ok {
		c.p = p
		c.try = p.TryReach // bound once: the hot paths must not allocate per call
	}
	return c
}

type condensed struct {
	cond  *scc.Condensation
	inner Index
	rc    ReachCounter                    // inner as ReachCounter, nil otherwise
	p     Partial                         // inner as Partial, nil when complete
	try   func(u, t graph.V) (bool, bool) // p.TryReach, pre-bound
}

func (c *condensed) Name() string { return c.inner.Name() }

func (c *condensed) Reach(s, t graph.V) bool {
	cs, ct := c.cond.Comp[s], c.cond.Comp[t]
	if cs == ct {
		return true
	}
	return c.inner.Reach(cs, ct)
}

func (c *condensed) Stats() Stats {
	st := c.inner.Stats()
	st.Bytes += len(c.cond.Comp) * 4
	return st
}

// TryReach forwards partial-index lookups through the condensation.
func (c *condensed) TryReach(s, t graph.V) (bool, bool) {
	cs, ct := c.cond.Comp[s], c.cond.Comp[t]
	if cs == ct {
		return true, true
	}
	if c.p != nil {
		return c.p.TryReach(cs, ct)
	}
	return c.inner.Reach(cs, ct), true
}

// ReachCounted implements ReachCounter: it answers exactly like Reach but
// additionally reports whether the inner index decided the query from its
// labels alone and, if not, how many DAG vertices the guided fallback
// expanded. When the inner index counts for itself (the guided-DFS family
// all do) the query is byte-for-byte the traversal Reach performs, so
// instrumented and raw queries do identical work apart from the counter.
func (c *condensed) ReachCounted(s, t graph.V) (reachable bool, visited int, decided bool) {
	cs, ct := c.cond.Comp[s], c.cond.Comp[t]
	if cs == ct {
		return true, 0, true
	}
	if c.rc != nil {
		return c.rc.ReachCounted(cs, ct)
	}
	if c.p != nil {
		r, n := CountingGuidedDFS(c.cond.DAG, cs, ct, c.try)
		return r, n, n == 0
	}
	return c.inner.Reach(cs, ct), 0, true
}

// Inner exposes the wrapped DAG index; the experiment harness uses it to
// report the underlying technique's statistics.
func (c *condensed) Inner() Index { return c.inner }
