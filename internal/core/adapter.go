package core

import (
	"repro/internal/graph"
	"repro/internal/scc"
)

// DAGBuilder constructs an index assuming its input is a DAG.
type DAGBuilder func(dag *graph.Digraph) Index

// ForGeneral lifts a DAG-only index builder to general graphs via SCC
// condensation (§3.1): Qr(s, t) is answered by first checking whether s and
// t share an SCC, then querying the DAG index on the component graph. This
// is the standard reduction the paper notes "most plain reachability
// indexes in literature assume".
func ForGeneral(g *graph.Digraph, build DAGBuilder) Index {
	cond := scc.Condense(g)
	inner := build(cond.DAG)
	return &condensed{cond: cond, inner: inner}
}

type condensed struct {
	cond  *scc.Condensation
	inner Index
}

func (c *condensed) Name() string { return c.inner.Name() }

func (c *condensed) Reach(s, t graph.V) bool {
	cs, ct := c.cond.Comp[s], c.cond.Comp[t]
	if cs == ct {
		return true
	}
	return c.inner.Reach(cs, ct)
}

func (c *condensed) Stats() Stats {
	st := c.inner.Stats()
	st.Bytes += len(c.cond.Comp) * 4
	return st
}

// TryReach forwards partial-index lookups through the condensation.
func (c *condensed) TryReach(s, t graph.V) (bool, bool) {
	cs, ct := c.cond.Comp[s], c.cond.Comp[t]
	if cs == ct {
		return true, true
	}
	if p, ok := c.inner.(Partial); ok {
		return p.TryReach(cs, ct)
	}
	return c.inner.Reach(cs, ct), true
}

// Inner exposes the wrapped DAG index; the experiment harness uses it to
// report the underlying technique's statistics.
func (c *condensed) Inner() Index { return c.inner }
