package core

import (
	"time"

	"repro/internal/graph"
	"repro/internal/obs"
)

// ReachCounter is implemented by indexes that can answer a query while
// reporting probe-level detail: whether the index decided it without
// traversal, and how many vertices any guided fallback expanded. The
// condensed adapter implements it over its DAG; the instrumented wrapper
// prefers it because it does exactly the work of Reach plus one integer
// increment per expanded vertex.
type ReachCounter interface {
	ReachCounted(s, t graph.V) (reachable bool, visited int, decided bool)
}

// latencySampleMask selects which queries get timed: 1 in every
// (latencySampleMask+1) calls, keyed off the running query count (so the
// very first query is always timed). All counters (queries, outcome,
// decided/fallback, visited) remain exact; only the latency histogram is
// sampled. Two clock reads cost more than the entire rest of the hot path,
// so sampling is what keeps enabled-mode overhead within the ~10% budget
// on sub-microsecond indexes (see OBSERVABILITY.md).
const latencySampleMask = 31

// Instrumented wraps an Index, recording per-query latency, outcome, and
// — for Partial implementations — probe-level detail: whether TryReach
// decided the query alone or index-guided traversal had to run, and how
// many vertices that fallback expanded. It is the query-side half of the
// observability layer (the build-side half is the Spans plumbing in
// ForGeneralSpans and the builders).
//
// With nil metrics every method forwards straight to the inner index, so
// a disabled wrapper costs one pointer comparison per call. All interface
// assertions and the TryReach method value are resolved once at
// construction so the hot path allocates nothing.
type Instrumented struct {
	inner Index
	g     Adjacency // traversal view for fallback accounting; may be nil
	m     *obs.IndexMetrics

	cond *condensed                      // inner as *condensed: direct (devirtualized) call
	rc   ReachCounter                    // inner as ReachCounter, nil otherwise
	p    Partial                         // inner as Partial, nil otherwise
	try  func(u, t graph.V) (bool, bool) // p.TryReach, pre-bound
}

// Instrument wraps ix. g is the adjacency the guided fallback traverses
// when the index is partial, does not count its own probes, and TryReach
// leaves a query undecided — pass the graph ix was built over (for
// SCC-lifted indexes the adapter counts internally over its DAG, so g is
// unused). With g nil the wrapper still records decided/fallback counts
// but delegates undecided queries to the inner index and reports no
// visited-vertex totals.
func Instrument(ix Index, g Adjacency, m *obs.IndexMetrics) *Instrumented {
	w := &Instrumented{inner: ix, g: g, m: m}
	if m != nil {
		m.SetLatencySampleStride(latencySampleMask + 1)
	}
	if c, ok := ix.(*condensed); ok {
		w.cond = c
	} else if rc, ok := ix.(ReachCounter); ok {
		w.rc = rc
	}
	if p, ok := ix.(Partial); ok {
		w.p = p
		w.try = p.TryReach
	}
	return w
}

// Name implements Index.
func (w *Instrumented) Name() string { return w.inner.Name() }

// Stats implements Index.
func (w *Instrumented) Stats() Stats { return w.inner.Stats() }

// Inner returns the wrapped index.
func (w *Instrumented) Inner() Index { return w.inner }

// Metrics returns the metrics cell this wrapper records into.
func (w *Instrumented) Metrics() *obs.IndexMetrics { return w.m }

// Reach implements Index, recording one query.
func (w *Instrumented) Reach(s, t graph.V) bool {
	m := w.m
	if m == nil {
		return w.inner.Reach(s, t)
	}
	timed := (m.Positive.Load()+m.Negative.Load())&latencySampleMask == 0
	var start time.Time
	if timed {
		start = time.Now()
	}
	var res bool
	switch {
	case w.cond != nil:
		var visited int
		var decided bool
		res, visited, decided = w.cond.ReachCounted(s, t)
		m.ObserveProbe(decided, visited)
	case w.rc != nil:
		var visited int
		var decided bool
		res, visited, decided = w.rc.ReachCounted(s, t)
		m.ObserveProbe(decided, visited)
	case w.p != nil:
		if w.g != nil {
			// CountingGuidedDFS probes (s, t) first, so a decided query
			// expands nothing and an undecided one expands >= 1 vertices.
			var visited int
			res, visited = CountingGuidedDFS(w.g, s, t, w.try)
			m.ObserveProbe(visited == 0, visited)
		} else if r, decided := w.p.TryReach(s, t); decided {
			res = r
			m.ObserveProbe(true, 0)
		} else {
			res = w.inner.Reach(s, t)
			m.ObserveProbe(false, 0)
		}
	default:
		res = w.inner.Reach(s, t)
	}
	m.ObserveOutcome(res)
	if timed {
		m.Latency.Record(time.Since(start))
	}
	return res
}

// TryReach implements Partial: partial inner indexes forward; complete
// inner indexes always decide (mirroring the condensed adapter).
func (w *Instrumented) TryReach(s, t graph.V) (bool, bool) {
	if w.try != nil {
		return w.try(s, t)
	}
	if p, ok := w.inner.(Partial); ok { // e.g. a ReachCounter that is also Partial
		return p.TryReach(s, t)
	}
	return w.inner.Reach(s, t), true
}

// ObserveBatch records a batch submission (see reach.BatchReach).
func (w *Instrumented) ObserveBatch(n int) {
	if w.m != nil {
		w.m.ObserveBatch(n)
	}
}
