package rlc

import (
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/indextest"
	"repro/internal/tc"
)

func TestConformance(t *testing.T) {
	indextest.CheckRLCIndex(t, func(g *graph.Digraph, maxSeq int) core.RLCIndex {
		return New(g, Options{MaxSeq: maxSeq})
	}, 2)
}

func TestFig1WorkedExample(t *testing.T) {
	// §4.2: Qr(L, B, (worksFor·friendOf)*) = true via the MR
	// (worksFor, friendOf).
	g := graph.Fig1Labeled()
	ix := New(g, Options{MaxSeq: 2})
	id := func(name string) graph.V {
		for v := 0; v < g.N(); v++ {
			if g.VertexName(graph.V(v)) == name {
				return graph.V(v)
			}
		}
		t.Fatalf("no vertex %q", name)
		return 0
	}
	worksFor, friendOf := graph.Label(2), graph.Label(0)
	if !ix.ReachRLC(id("L"), id("B"), []graph.Label{worksFor, friendOf}) {
		t.Error("Qr(L,B,(worksFor.friendOf)*) should be true")
	}
	if ix.ReachRLC(id("A"), id("B"), []graph.Label{worksFor, friendOf}) {
		t.Error("Qr(A,B,(worksFor.friendOf)*) should be false")
	}
	if ix.ReachRLC(id("L"), id("B"), []graph.Label{friendOf, worksFor}) {
		t.Error("the rotated unit must not match (path starts with worksFor)")
	}
}

func TestSelfQueriesNeedCycles(t *testing.T) {
	// A 2-cycle with labels a, b: (a·b)* from 0 back to 0 is true; from a
	// DAG vertex it is false.
	b := graph.NewLabeledBuilder(2)
	b.AddLabeledEdge(0, 1, 0)
	b.AddLabeledEdge(1, 0, 1)
	g := b.MustFreeze()
	ix := New(g, Options{MaxSeq: 2})
	if !ix.ReachRLC(0, 0, []graph.Label{0, 1}) {
		t.Error("cycle (a,b) from 0 should be true")
	}
	if !ix.ReachRLC(1, 1, []graph.Label{1, 0}) {
		t.Error("cycle (b,a) from 1 should be true")
	}
	if ix.ReachRLC(0, 0, []graph.Label{1, 0}) {
		t.Error("wrong alignment should be false")
	}
	if ix.ReachRLC(0, 0, []graph.Label{0}) {
		t.Error("(a)* self loop does not exist")
	}
}

func TestLongSequenceFallback(t *testing.T) {
	// Sequences longer than κ use the online product search and must stay
	// exact.
	g := gen.Zipf(gen.ErdosRenyi(gen.Config{N: 30, M: 150, Seed: 1}), 3, 0, 2)
	ix := New(g, Options{MaxSeq: 1})
	for s := graph.V(0); int(s) < g.N(); s += 3 {
		for tt := graph.V(0); int(tt) < g.N(); tt += 3 {
			seq := []graph.Label{0, 1}
			want := tc.RLCReach(g, s, tt, seq, false)
			if got := ix.ReachRLC(s, tt, seq); got != want {
				t.Fatalf("fallback ReachRLC(%d,%d) = %v, want %v", s, tt, got, want)
			}
		}
	}
	if ix.MaxSeq() != 1 || ix.Name() != "RLC" {
		t.Error("metadata")
	}
}

func TestEmptySequence(t *testing.T) {
	g := graph.Fig1Labeled()
	ix := New(g, Options{})
	if ix.ReachRLC(0, 1, nil) {
		t.Error("empty unit sequence must be false")
	}
}

func TestNonPrimitiveUnit(t *testing.T) {
	// Unit (a·a) requires an even number of a-edges; a 3-cycle of a-edges
	// satisfies (a)* from any vertex but (a·a)* only via two laps (6 ≡ 0
	// mod 2 — reachable back to start), so both hold here; use a 3-path
	// instead: 0-a->1-a->2-a->3: (a·a)* matches 0→2 but not 0→3.
	b := graph.NewLabeledBuilder(4)
	b.AddLabeledEdge(0, 1, 0)
	b.AddLabeledEdge(1, 2, 0)
	b.AddLabeledEdge(2, 3, 0)
	g := b.MustFreeze()
	ix := New(g, Options{MaxSeq: 2})
	if !ix.ReachRLC(0, 2, []graph.Label{0, 0}) {
		t.Error("(a.a)* should match the 2-step path")
	}
	if ix.ReachRLC(0, 3, []graph.Label{0, 0}) {
		t.Error("(a.a)* must not match a 3-step path")
	}
	if !ix.ReachRLC(0, 3, []graph.Label{0}) {
		t.Error("(a)* should match the 3-step path")
	}
}
