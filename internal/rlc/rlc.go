// Package rlc implements the RLC index of Zhang et al. [52] (§4.2) for
// recursive label-concatenated queries Qr(s, t, (l1·l2·...·lk)*): does
// some s-t path spell a whole number of repeats of the sequence?
//
// As in the published design, the index is bounded by a maximum
// concatenation length κ ("the concatenation length under the Kleene
// operator is leveraged to guide the computation") — queries with longer
// units fall back to online product search. For every candidate unit
// sequence m with |m| ≤ κ, paths are tracked per phase (position within
// m, the paper's minimum-repeat alignment), and a pruned 2-hop labeling
// is built over the phase product: hubs are (vertex, phase) pairs, and
// Qr(s, t, m*) reduces to 2-hop reachability from (s, 0) to (t, 0). This
// realizes the paper's two-phase scheme — enumerate the possible MRs,
// then record only transitive hop entries — with the product labeling
// standing in for the bespoke kernel-BFS (see DESIGN.md).
package rlc

import (
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/pll"
	"repro/internal/tc"
)

// Options configures the RLC index.
type Options struct {
	// MaxSeq is κ, the maximum indexed concatenation length. Default 2.
	MaxSeq int
	// Check is an optional cancellation checkpoint, ticked per enumerated
	// unit sequence and per BFS dequeue of the phase-product labelings.
	Check *core.Check
}

func (o *Options) defaults() {
	if o.MaxSeq <= 0 {
		o.MaxSeq = 2
	}
}

// Index is the RLC index.
type Index struct {
	g      *graph.Digraph
	maxSeq int
	// products maps an encoded sequence to its phase-product 2-hop
	// labeling (nil when the sequence matches no edge pair at all and the
	// product graph is edgeless — kept anyway, lookups just fail fast).
	products map[string]*product
	stats    core.Stats
}

type product struct {
	k  int
	ix *pll.Index
	// hasEdges is false when the product graph is edgeless — every
	// nontrivial query on it is false.
	hasEdges bool
}

// New builds the RLC index for all unit sequences up to opts.MaxSeq.
func New(g *graph.Digraph, opts Options) *Index {
	opts.defaults()
	start := time.Now()
	ix := &Index{g: g, maxSeq: opts.MaxSeq, products: map[string]*product{}}
	L := g.Labels()
	seq := make([]graph.Label, 0, opts.MaxSeq)
	var enumerate func(depth int)
	enumerate = func(depth int) {
		if depth > 0 {
			opts.Check.Tick()
			ix.products[encode(seq)] = buildProduct(g, seq, opts.Check)
		}
		if depth == opts.MaxSeq {
			return
		}
		for l := 0; l < L; l++ {
			seq = append(seq, graph.Label(l))
			enumerate(depth + 1)
			seq = seq[:len(seq)-1]
		}
	}
	enumerate(0)
	entries, bytes := 0, 0
	for _, p := range ix.products {
		if p.ix != nil {
			st := p.ix.Stats()
			entries += st.Entries
			bytes += st.Bytes
		}
	}
	ix.stats = core.Stats{Entries: entries, Bytes: bytes, BuildTime: time.Since(start)}
	return ix
}

func encode(seq []graph.Label) string {
	b := make([]byte, 2*len(seq))
	for i, l := range seq {
		b[2*i] = byte(l)
		b[2*i+1] = byte(l >> 8)
	}
	return string(b)
}

// buildProduct constructs the phase product of g with the cyclic
// automaton of seq and labels it with pruned 2-hop.
func buildProduct(g *graph.Digraph, seq []graph.Label, chk *core.Check) *product {
	k := len(seq)
	n := g.N()
	b := graph.NewBuilder(n * k)
	edges := 0
	g.Edges(func(e graph.Edge) bool {
		for ph := 0; ph < k; ph++ {
			if e.Label == seq[ph] {
				b.AddEdge(e.From*graph.V(k)+graph.V(ph), e.To*graph.V(k)+graph.V((ph+1)%k))
				edges++
			}
		}
		return true
	})
	p := &product{k: k, hasEdges: edges > 0}
	if p.hasEdges {
		p.ix = pll.New(b.MustFreeze(), pll.Options{Name: "RLC-product", Check: chk})
	}
	return p
}

// Name implements core.RLCIndex.
func (ix *Index) Name() string { return "RLC" }

// ReachRLC reports whether some s-t path spells (seq)^j for j >= 1.
// Sequences longer than κ fall back to online product search.
func (ix *Index) ReachRLC(s, t graph.V, seq []graph.Label) bool {
	if len(seq) == 0 {
		return false
	}
	p, ok := ix.products[encode(seq)]
	if !ok {
		return tc.RLCReach(ix.g, s, t, seq, false)
	}
	if !p.hasEdges {
		return false
	}
	k := graph.V(p.k)
	if s != t {
		return p.ix.Reach(s*k, t*k)
	}
	// s == t needs a genuine cycle: one step out of (s, 0), then back.
	cyc := false
	succ := ix.g.Succ(s)
	labs := ix.g.SuccLabels(s)
	for i, w := range succ {
		if labs[i] != seq[0] {
			continue
		}
		if p.k == 1 {
			if w == s || p.ix.Reach(w*k, s*k) {
				cyc = true
				break
			}
		} else if p.ix.Reach(w*k+1, s*k) {
			cyc = true
			break
		}
	}
	return cyc
}

// Stats implements core.RLCIndex.
func (ix *Index) Stats() core.Stats { return ix.stats }

// MaxSeq returns κ.
func (ix *Index) MaxSeq() int { return ix.maxSeq }
