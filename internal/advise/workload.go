package advise

import (
	"repro/internal/workload"
)

// WorkloadProfile summarizes a recorded trace: the query-mix features
// the rule table reads alongside the graph's shape.
type WorkloadProfile struct {
	Records int `json:"records"`
	// Plain counts unconstrained reachability records — the ones the
	// plain-index advisor can score. Labeled queries (alternation masks,
	// path constraints) ride their own LCR/RLC indexes.
	Plain      int     `json:"plain"`
	LabelShare float64 `json:"label_share"` // fraction with a label constraint
	BatchShare float64 `json:"batch_share"` // fraction arriving via batch routes
	// PositiveShare is the fraction of positive (reachable) answers among
	// plain records: negative-heavy workloads reward indexes with strong
	// negative cuts (IP, BFL, PReaCH).
	PositiveShare float64 `json:"positive_share"`
	// CachedShare is the fraction answered by the result cache at capture
	// time; those records carry cache-hit latencies and are skipped when
	// scoring candidates.
	CachedShare float64 `json:"cached_share"`
	// Source/TargetLocality measure how concentrated the endpoints are:
	// 1 - distinct/records, so 0 means every record has a fresh endpoint
	// and values near 1 mean a few hot vertices dominate.
	SourceLocality float64 `json:"source_locality"`
	TargetLocality float64 `json:"target_locality"`
	// RouteShare is the per-route record share as captured.
	RouteShare map[string]float64 `json:"route_share,omitempty"`
}

// ProfileWorkload computes the trace features. n is the graph's vertex
// count; out-of-range records (a trace from a different graph) are
// counted in Records but excluded from the plain query statistics.
func ProfileWorkload(recs []workload.Record, n int) WorkloadProfile {
	p := WorkloadProfile{Records: len(recs)}
	if len(recs) == 0 {
		return p
	}
	routes := map[string]int{}
	srcs := map[uint32]struct{}{}
	tgts := map[uint32]struct{}{}
	labeled, batch, cached, positive := 0, 0, 0, 0
	for i := range recs {
		rec := &recs[i]
		routes[rec.Route]++
		if rec.Route == "batch" {
			batch++
		}
		if rec.Cached {
			cached++
		}
		if rec.Alpha != "" || len(rec.Labels) > 0 {
			labeled++
			continue
		}
		if int(rec.S) >= n || int(rec.T) >= n {
			continue
		}
		p.Plain++
		srcs[rec.S] = struct{}{}
		tgts[rec.T] = struct{}{}
		if rec.Outcome {
			positive++
		}
	}
	total := float64(len(recs))
	p.LabelShare = float64(labeled) / total
	p.BatchShare = float64(batch) / total
	p.CachedShare = float64(cached) / total
	if p.Plain > 0 {
		p.PositiveShare = float64(positive) / float64(p.Plain)
		p.SourceLocality = 1 - float64(len(srcs))/float64(p.Plain)
		p.TargetLocality = 1 - float64(len(tgts))/float64(p.Plain)
	}
	p.RouteShare = make(map[string]float64, len(routes))
	for r, c := range routes {
		p.RouteShare[r] = float64(c) / total
	}
	return p
}

// PlainPairs extracts the scorable replay set: plain (unconstrained),
// uncached, in-range records — cached entries carry cache-hit latencies,
// not index-probe latencies, so they would skew candidate scoring. When
// max > 0 caps the set, records are stride-sampled so the sample keeps
// the trace's temporal mix instead of its head.
func PlainPairs(recs []workload.Record, n int, max int) []workload.Record {
	out := make([]workload.Record, 0, len(recs))
	for i := range recs {
		rec := recs[i]
		if rec.Alpha != "" || len(rec.Labels) > 0 || rec.Cached {
			continue
		}
		if int(rec.S) >= n || int(rec.T) >= n {
			continue
		}
		out = append(out, rec)
	}
	if max > 0 && len(out) > max {
		sampled := make([]workload.Record, max)
		for i := 0; i < max; i++ {
			sampled[i] = out[i*len(out)/max]
		}
		out = sampled
	}
	return out
}
