package advise

// The rule table, distilled from the survey's taxonomy (§6 and Table 1):
// each rule reads the profiles and nominates kinds for its regime. Rules
// nominate, measurement decides — the shortlist exists only to keep the
// measured field small, so every rule errs toward including a kind when
// its regime plausibly applies.
//
// Regimes and their champions:
//
//   - heavy-tailed degrees → degree-ordered pruned 2-hop (PLL, DL, TOL):
//     hub labels stay tiny when a few hubs cover most paths.
//   - deep-and-narrow DAGs → interval/refinement indexes (GRAIL, FERRARI,
//     Feline, PReaCH): interval containment decides most pairs.
//   - tree-like condensations (few non-tree edges) → the tree-cover
//     extensions (dual labeling, path-tree).
//   - negative-heavy workloads → strong negative cuts (IP, BFL, PReaCH):
//     most queries end at the first filter.
//   - small graphs → total-order labels (TOL, PLL); everything is cheap,
//     so take the fastest probes. The quadratic constructions (2hop,
//     3hop, pathhop) stay excluded even here — their build cost buys no
//     probe advantage over TOL/PLL.
//   - everything else → BFL, the survey's robust default, always listed.

// Candidate is one short-listed kind plus the rule that nominated it;
// measurement fields are filled by the evaluator.
type Candidate struct {
	Kind       string `json:"kind"`
	Reason     string `json:"reason,omitempty"`
	Feasible   bool   `json:"feasible"`
	Error      string `json:"error,omitempty"`
	BuildNS    int64  `json:"build_ns,omitempty"`
	Bytes      int    `json:"bytes,omitempty"`
	OverBudget bool   `json:"over_budget,omitempty"`
	Measurement
}

// Shortlist applies the rule table and returns at most max candidates in
// nomination order (earlier rules are stronger signals).
func Shortlist(gp GraphProfile, wp WorkloadProfile, max int) []Candidate {
	var out []Candidate
	seen := map[string]bool{}
	add := func(kind, reason string) {
		if !seen[kind] {
			seen[kind] = true
			out = append(out, Candidate{Kind: kind, Reason: reason})
		}
	}

	add("bfl", "robust default (approximate-TC filter + fallback)")

	smallGraph := gp.N <= 4096
	if smallGraph {
		add("tol", "small graph: total-order 2-hop labels are affordable and probe fastest")
		add("pll", "small graph: pruned landmark labels are affordable")
	}

	// Heavy degree tail on either side: degree-ordered 2-hop regimes.
	if gp.InDegree.Skew >= 4 || gp.OutDegree.Skew >= 4 {
		add("pll", "heavy-tailed degrees: hub-ordered pruned 2-hop stays small")
		add("dl", "heavy-tailed degrees: distribution labeling")
	}

	// Deep-and-narrow condensation: interval indexes decide most pairs.
	if gp.Depth >= 4*gp.Width && gp.Depth >= 8 {
		add("grail", "deep-and-narrow DAG: interval containment decides most pairs")
		add("ferrari", "deep-and-narrow DAG: exact+approximate interval mix")
	} else if gp.Depth >= gp.Width {
		add("feline", "depth ≥ width: two-coordinate dominance prunes well")
	}

	// Tree-like condensation: the tree-cover extension regime.
	if gp.NonTreeShare <= 0.2 && gp.CyclicMass < 0.5 {
		add("pathtree", "near-tree condensation: path-tree covers it compactly")
	}

	// Negative-heavy workloads reward strong negative cuts.
	if wp.Plain > 0 && wp.PositiveShare <= 0.25 {
		add("ip", "negative-heavy workload: IP's independent permutations cut negatives")
		add("preach", "negative-heavy workload: pruned-BFS contraction hierarchy")
	}

	// Guarantee a complete-index contender next to the partial ones.
	add("pll", "pruned 2-hop contender")

	if max > 0 && len(out) > max {
		out = out[:max]
	}
	return out
}
