package advise

import (
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
)

// GraphProfile is the structural feature vector the rule table consumes,
// computed off the shared PreparedGraph memo (the condensation runs at
// most once per DB regardless of the advisor).
type GraphProfile struct {
	N       int  `json:"n"`
	M       int  `json:"m"`
	Labeled bool `json:"labeled,omitempty"`

	// SCC structure: SCCs is the condensation's vertex count,
	// LargestSCC the biggest component, CyclicMass the fraction of
	// vertices inside non-trivial (size ≥ 2) components. A DAG has
	// SCCs == N and CyclicMass 0.
	SCCs       int     `json:"sccs"`
	LargestSCC int     `json:"largest_scc"`
	CyclicMass float64 `json:"cyclic_mass"`

	// Degree distribution of the graph itself (not the condensation):
	// heavy tails (large Skew) are the regime of degree-ordered 2-hop.
	OutDegree gen.DegreeStats `json:"out_degree"`
	InDegree  gen.DegreeStats `json:"in_degree"`

	// Longest-path layering of the condensation DAG: Depth is the number
	// of levels, Width the largest level. Deep-and-narrow favors
	// interval/tree indexes; shallow-and-wide favors pruned 2-hop.
	Depth int `json:"depth"`
	Width int `json:"width"`

	// NonTreeShare is the fraction of condensation edges beyond a
	// spanning forest — near 0 means tree-like, the dual-labeling /
	// path-tree regime.
	NonTreeShare float64 `json:"non_tree_share"`

	Labels gen.LabelStats `json:"labels"`
}

// ProfileGraph computes the feature vector for prep's graph.
func ProfileGraph(prep *core.Prepared) GraphProfile {
	g := prep.Graph()
	p := GraphProfile{
		N:         g.N(),
		M:         g.M(),
		Labeled:   g.Labeled(),
		OutDegree: gen.OutDegrees(g),
		InDegree:  gen.InDegrees(g),
		Labels:    gen.AnalyzeLabels(g),
	}
	if g.N() == 0 {
		return p
	}
	cond, _ := prep.Condensation()
	dag := cond.DAG
	p.SCCs = dag.N()
	inCyc := 0
	for _, sz := range cond.Size {
		if sz > p.LargestSCC {
			p.LargestSCC = sz
		}
		if sz >= 2 {
			inCyc += sz
		}
	}
	p.CyclicMass = float64(inCyc) / float64(g.N())
	p.Depth, p.Width = layering(dag)
	if m := dag.M(); m > 0 {
		extra := m - (dag.N() - 1)
		if extra < 0 {
			extra = 0
		}
		p.NonTreeShare = float64(extra) / float64(m)
	}
	return p
}

// layering computes the longest-path level of every vertex of a DAG via
// one pass in topological order (Kahn), returning the level count and
// the widest level's size.
func layering(dag *graph.Digraph) (depth, width int) {
	n := dag.N()
	if n == 0 {
		return 0, 0
	}
	indeg := make([]int, n)
	queue := make([]graph.V, 0, n)
	for v := 0; v < n; v++ {
		indeg[v] = dag.InDegree(graph.V(v))
		if indeg[v] == 0 {
			queue = append(queue, graph.V(v))
		}
	}
	level := make([]int, n)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range dag.Succ(v) {
			if l := level[v] + 1; l > level[w] {
				level[w] = l
			}
			if indeg[w]--; indeg[w] == 0 {
				queue = append(queue, w)
			}
		}
	}
	maxLevel := 0
	for _, l := range level {
		if l > maxLevel {
			maxLevel = l
		}
	}
	counts := make([]int, maxLevel+1)
	for _, l := range level {
		counts[l]++
	}
	for _, c := range counts {
		if c > width {
			width = c
		}
	}
	return maxLevel + 1, width
}
