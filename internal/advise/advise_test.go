package advise_test

import (
	"context"
	"encoding/json"
	"math"
	"testing"

	reach "repro"
	"repro/internal/advise"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/workload"
)

func buildFunc(g *graph.Digraph, prep *core.Prepared) advise.BuildFunc {
	return func(ctx context.Context, kind string) (core.Index, error) {
		return reach.BuildCtx(ctx, reach.Kind(kind), g, reach.Options{Prepared: prep})
	}
}

// trace synthesizes a plain workload with BFS ground truth.
func trace(g *graph.Digraph, n int, seed int64) []workload.Record {
	qs := gen.Queries(g, n, seed)
	recs := make([]workload.Record, len(qs))
	for i, q := range qs {
		recs[i] = workload.Record{S: uint32(q.S), T: uint32(q.T), Route: "plain", Outcome: q.Want}
	}
	return recs
}

func TestProfileGraphFig1(t *testing.T) {
	g := graph.Fig1Plain()
	p := advise.ProfileGraph(core.NewPrepared(g))
	// Figure 1(a): 9 vertices, 12 edges, acyclic — the condensation is
	// the graph itself and the longest path (A,L,C,H,G,B) spans 6 levels.
	if p.N != 9 || p.M != 12 {
		t.Fatalf("fig1 n/m = %d/%d, want 9/12", p.N, p.M)
	}
	if p.SCCs != 9 || p.LargestSCC != 1 || p.CyclicMass != 0 {
		t.Fatalf("fig1 profiled cyclic: %+v", p)
	}
	if p.Depth != 6 || p.Width < 1 || p.Width > p.N {
		t.Fatalf("fig1 layering depth=%d width=%d, want depth 6", p.Depth, p.Width)
	}
	if p.OutDegree.Max != 3 {
		t.Fatalf("fig1 max out-degree = %d, want 3", p.OutDegree.Max)
	}
}

func TestProfileGraphShapes(t *testing.T) {
	// BandedDAG: acyclic with a backbone — condensation is the graph
	// itself and the layering is the full backbone depth.
	bg := gen.BandedDAG(gen.Config{N: 400, M: 1600, Seed: 3}, 16)
	bp := advise.ProfileGraph(core.NewPrepared(bg))
	if bp.SCCs != bp.N || bp.CyclicMass != 0 || bp.LargestSCC != 1 {
		t.Fatalf("banded DAG profiled cyclic: %+v", bp)
	}
	if bp.Depth != bp.N {
		t.Fatalf("banded backbone depth = %d, want %d (total order)", bp.Depth, bp.N)
	}
	if bp.Width != 1 {
		t.Fatalf("banded backbone width = %d, want 1", bp.Width)
	}

	// Dense ErdosRenyi: cyclic, so the condensation must shrink and the
	// cyclic mass must be visible.
	cg := gen.ErdosRenyi(gen.Config{N: 300, M: 3000, Seed: 7})
	cp := advise.ProfileGraph(core.NewPrepared(cg))
	if cp.SCCs >= cp.N {
		t.Fatalf("dense cyclic graph has no non-trivial SCC: %+v", cp)
	}
	if cp.CyclicMass <= 0 || cp.LargestSCC < 2 {
		t.Fatalf("cyclic mass not detected: %+v", cp)
	}

	// Deep-narrow vs shallow-wide layering.
	deep := advise.ProfileGraph(core.NewPrepared(gen.LayeredDAG(50, 4, 2, 5)))
	wide := advise.ProfileGraph(core.NewPrepared(gen.LayeredDAG(4, 50, 2, 5)))
	if deep.Depth != 50 || wide.Depth != 4 {
		t.Fatalf("layered depth = %d/%d, want 50/4", deep.Depth, wide.Depth)
	}
	// Longest-path layering can park unreached vertices on level 0, so
	// compare shape ratios rather than nominal layer widths.
	if deep.Width >= deep.Depth || wide.Width <= wide.Depth {
		t.Fatalf("layered width = %d/%d (depth %d/%d)", deep.Width, wide.Width, deep.Depth, wide.Depth)
	}
}

func TestProfileWorkload(t *testing.T) {
	recs := []workload.Record{
		{S: 0, T: 1, Route: "plain", Outcome: true},
		{S: 0, T: 2, Route: "plain", Outcome: false},
		{S: 0, T: 3, Route: "plain", Outcome: false, Cached: true},
		{S: 1, T: 2, Route: "lcr", Labels: []uint16{0}},
		{S: 9999, T: 1, Route: "plain"}, // out of range for n=100
	}
	p := advise.ProfileWorkload(recs, 100)
	if p.Records != 5 || p.Plain != 3 {
		t.Fatalf("records=%d plain=%d, want 5/3", p.Records, p.Plain)
	}
	if p.LabelShare != 0.2 || p.CachedShare != 0.2 {
		t.Fatalf("label share %v cached share %v, want 0.2/0.2", p.LabelShare, p.CachedShare)
	}
	if p.PositiveShare != 1.0/3 {
		t.Fatalf("positive share = %v, want 1/3", p.PositiveShare)
	}
	// Source 0 appears 3 times among 3 counted plain records → locality 2/3.
	if want := 2.0 / 3; math.Abs(p.SourceLocality-want) > 1e-9 {
		t.Fatalf("source locality = %v, want %v", p.SourceLocality, want)
	}

	pairs := advise.PlainPairs(recs, 100, 0)
	if len(pairs) != 2 {
		t.Fatalf("PlainPairs kept %d records, want 2 (skips cached, labeled, out-of-range)", len(pairs))
	}
	for _, rec := range pairs {
		if rec.Cached || len(rec.Labels) > 0 {
			t.Fatalf("PlainPairs kept unscorable record %+v", rec)
		}
	}
}

func TestShortlistRegimes(t *testing.T) {
	contains := func(cs []advise.Candidate, kind string) bool {
		for _, c := range cs {
			if c.Kind == kind {
				return true
			}
		}
		return false
	}

	// Scale-free: heavy in-degree tail → degree-ordered 2-hop must be listed.
	sf := advise.ProfileGraph(core.NewPrepared(gen.ScaleFree(6000, 4, 1)))
	sl := advise.Shortlist(sf, advise.WorkloadProfile{}, 6)
	if !contains(sl, "pll") {
		t.Fatalf("scale-free shortlist misses pll: %+v", sl)
	}
	if !contains(sl, "bfl") {
		t.Fatalf("shortlist misses the bfl default: %+v", sl)
	}

	// Deep-narrow backbone chain → interval kinds.
	deep := advise.ProfileGraph(core.NewPrepared(gen.BandedDAG(gen.Config{N: 8000, M: 32000, Seed: 5}, 16)))
	sl = advise.Shortlist(deep, advise.WorkloadProfile{}, 6)
	if !contains(sl, "grail") && !contains(sl, "ferrari") {
		t.Fatalf("deep-narrow shortlist misses interval kinds: %+v", sl)
	}

	// Negative-heavy workload → a negative-cut kind.
	wp := advise.WorkloadProfile{Plain: 100, PositiveShare: 0.1}
	sl = advise.Shortlist(deep, wp, 8)
	if !contains(sl, "ip") && !contains(sl, "preach") {
		t.Fatalf("negative-heavy shortlist misses ip/preach: %+v", sl)
	}

	// The quadratic constructions must never be nominated.
	for _, banned := range []string{"2hop", "3hop", "pathhop"} {
		if contains(sl, banned) {
			t.Fatalf("shortlist nominated quadratic kind %s", banned)
		}
	}

	// Cap respected.
	if got := advise.Shortlist(sf, wp, 3); len(got) > 3 {
		t.Fatalf("shortlist ignored cap: %d candidates", len(got))
	}
}

func TestRunEndToEnd(t *testing.T) {
	g := gen.RandomDAG(gen.Config{N: 1500, M: 6000, Seed: 21})
	prep := core.NewPrepared(g)
	recs := trace(g, 300, 22)
	rep, err := advise.Run(context.Background(), prep, recs, advise.Config{
		Build: buildFunc(g, prep),
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Chosen == "" {
		t.Fatalf("no kind chosen: %+v", rep.Candidates)
	}
	found := false
	for _, c := range rep.Candidates {
		if c.Kind == rep.Chosen {
			found = true
			if !c.Feasible {
				t.Fatalf("chosen candidate %q infeasible", c.Kind)
			}
			if c.Mismatches != 0 {
				t.Fatalf("chosen candidate %q mismatched %d replayed outcomes", c.Kind, c.Mismatches)
			}
		}
	}
	if !found {
		t.Fatalf("chosen %q not among candidates", rep.Chosen)
	}
	if rep.Regret < 1 {
		t.Fatalf("regret %v < 1 (chosen beats best?)", rep.Regret)
	}
	if rep.Baseline.P99NS <= 0 || rep.Baseline.Queries != len(recs) {
		t.Fatalf("baseline not measured: %+v", rep.Baseline)
	}
	// Every index probe must beat a full BFS at p99 on a 1500-vertex DAG.
	if rep.ChosenP99NS > rep.Baseline.P99NS {
		t.Fatalf("chosen p99 %d slower than index-free baseline %d", rep.ChosenP99NS, rep.Baseline.P99NS)
	}
	if _, ok := rep.ChosenIndex(); ok {
		t.Fatal("ChosenIndex retained without KeepChosen")
	}
	if _, err := json.Marshal(rep); err != nil {
		t.Fatalf("report not JSON-marshalable: %v", err)
	}
}

func TestRunBudgetAndKeep(t *testing.T) {
	g := gen.RandomDAG(gen.Config{N: 800, M: 3200, Seed: 5})
	prep := core.NewPrepared(g)
	recs := trace(g, 200, 6)

	// A 1-byte budget fits nothing: the run must still choose (budget
	// falls back to the feasible field) and flag everything over budget.
	rep, err := advise.Run(context.Background(), prep, recs, advise.Config{
		Build:      buildFunc(g, prep),
		Budget:     1,
		KeepChosen: true,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, c := range rep.Candidates {
		if c.Feasible && !c.OverBudget {
			t.Fatalf("candidate %q within a 1-byte budget (bytes=%d)", c.Kind, c.Bytes)
		}
	}
	if rep.Chosen == "" {
		t.Fatal("budget fallback chose nothing")
	}
	ix, ok := rep.ChosenIndex()
	if !ok || ix == nil {
		t.Fatal("KeepChosen did not retain the chosen index")
	}
	// The retained index answers like the trace's ground truth.
	for _, rec := range advise.PlainPairs(recs, g.N(), 50) {
		if got := ix.Reach(graph.V(rec.S), graph.V(rec.T)); got != rec.Outcome {
			t.Fatalf("retained index wrong on (%d,%d): got %v", rec.S, rec.T, got)
		}
	}
}

func TestRunExplicitCandidatesAndErrors(t *testing.T) {
	g := gen.RandomDAG(gen.Config{N: 400, M: 1200, Seed: 9})
	prep := core.NewPrepared(g)
	recs := trace(g, 100, 10)

	rep, err := advise.Run(context.Background(), prep, recs, advise.Config{
		Build:      buildFunc(g, prep),
		Candidates: []string{"pll", "definitely-not-a-kind"},
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Chosen != "pll" {
		t.Fatalf("chosen %q, want pll (the only buildable candidate)", rep.Chosen)
	}
	var bad *advise.Candidate
	for i := range rep.Candidates {
		if rep.Candidates[i].Kind == "definitely-not-a-kind" {
			bad = &rep.Candidates[i]
		}
	}
	if bad == nil || bad.Feasible || bad.Error == "" {
		t.Fatalf("unknown kind not reported infeasible: %+v", bad)
	}

	// No scorable records → ErrNoTrace.
	cached := []workload.Record{{S: 0, T: 1, Route: "plain", Cached: true}}
	if _, err := advise.Run(context.Background(), prep, cached, advise.Config{Build: buildFunc(g, prep)}); err != advise.ErrNoTrace {
		t.Fatalf("cached-only trace: err = %v, want ErrNoTrace", err)
	}
	// Every candidate infeasible → ErrNoCandidate, report kept for
	// diagnosis.
	rep, err = advise.Run(context.Background(), prep, recs, advise.Config{
		Build:      buildFunc(g, prep),
		Candidates: []string{"definitely-not-a-kind"},
	})
	if err != advise.ErrNoCandidate {
		t.Fatalf("all-infeasible: err = %v, want ErrNoCandidate", err)
	}
	if rep == nil || len(rep.Candidates) != 1 || rep.Candidates[0].Error == "" {
		t.Fatalf("all-infeasible report not diagnosable: %+v", rep)
	}
	// Missing builder is a config error.
	if _, err := advise.Run(context.Background(), prep, recs, advise.Config{}); err == nil {
		t.Fatal("nil Build accepted")
	}
}

func TestReplaySummary(t *testing.T) {
	g := gen.RandomDAG(gen.Config{N: 500, M: 2000, Seed: 13})
	db, err := reach.NewDB(g, reach.DBConfig{})
	if err != nil {
		t.Fatalf("NewDB: %v", err)
	}
	recs := trace(g, 120, 14)
	recs = append(recs, workload.Record{S: 100000, T: 0, Route: "plain"}) // out of range
	sum := advise.Replay(db, recs)
	if sum.Records != len(recs) {
		t.Fatalf("records = %d, want %d", sum.Records, len(recs))
	}
	if len(sum.Routes) != 1 || sum.Routes[0].Route != "plain" {
		t.Fatalf("routes = %+v", sum.Routes)
	}
	rt := sum.Routes[0]
	if rt.Queries != len(recs) || rt.Errors != 1 || rt.Mismatches != 0 {
		t.Fatalf("route agg = %+v", rt)
	}
	if sum.Decided != len(recs)-1 {
		t.Fatalf("decided = %d, want %d", sum.Decided, len(recs)-1)
	}
	if rt.P99NS < rt.P50NS || rt.P50NS < 0 {
		t.Fatalf("percentiles inverted: %+v", rt)
	}
	if rt.ReplayNS <= 0 {
		t.Fatalf("no replay time recorded: %+v", rt)
	}
}

func TestMeasurePlainDeterministicMismatch(t *testing.T) {
	g := gen.RandomDAG(gen.Config{N: 300, M: 900, Seed: 17})
	prep := core.NewPrepared(g)
	ix, err := reach.BuildCtx(context.Background(), reach.KindBFL, g, reach.Options{Prepared: prep})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	recs := trace(g, 80, 18)
	// Flip one recorded outcome: exactly one mismatch must surface.
	recs[0].Outcome = !recs[0].Outcome
	m := advise.MeasurePlain(ix, recs, 4)
	if m.Mismatches != 1 || m.Queries != len(recs) {
		t.Fatalf("measurement = %+v, want 1 mismatch over %d queries", m, len(recs))
	}
	if m.P50NS < 0 || m.P99NS < m.P50NS {
		t.Fatalf("percentiles inverted: %+v", m)
	}
}
