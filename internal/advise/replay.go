package advise

import (
	"sort"
	"time"

	"repro/internal/workload"
)

// Engine is the query surface a trace replays against. *reach.DB
// satisfies it directly (graph.V and graph.Label are uint32/uint16
// aliases), which is how `reachcli replay` and the advisor share one
// replay implementation without the internal package importing the root.
type Engine interface {
	Reach(s, t uint32) (bool, error)
	Query(s, t uint32, alpha string) (bool, error)
	QueryAllowed(s, t uint32, labels ...uint16) (bool, error)
}

// RouteSummary aggregates one capture route's replay: counts, capture
// vs replay latency, and replayed latency percentiles.
type RouteSummary struct {
	Route      string `json:"route"`
	Queries    int    `json:"queries"`
	Cached     int    `json:"cached"` // capture-side result-cache hits
	CaptureNS  int64  `json:"capture_ns_total"`
	ReplayNS   int64  `json:"replay_ns_total"`
	Mismatches int    `json:"mismatches"`
	Errors     int    `json:"errors"`
	P50NS      int64  `json:"replay_p50_ns"`
	P99NS      int64  `json:"replay_p99_ns"`
}

// ReplaySummary is the machine-readable result of replaying a capture:
// the struct behind `reachcli replay -json`, consumed unchanged by the
// advisor's evaluator tooling.
type ReplaySummary struct {
	Records int            `json:"records"`
	Decided int            `json:"decided"` // replayed without error
	Routes  []RouteSummary `json:"routes"`
}

// Replay re-runs recs against e, aggregating per capture route. Vertex
// range and query errors count per route and never abort the replay.
func Replay(e Engine, recs []Record) *ReplaySummary {
	byRoute := map[string]*routeAgg{}
	order := []string{}
	for i := range recs {
		rec := &recs[i]
		agg := byRoute[rec.Route]
		if agg == nil {
			agg = &routeAgg{}
			byRoute[rec.Route] = agg
			order = append(order, rec.Route)
		}
		agg.n++
		agg.captureNS += int64(rec.Latency)
		if rec.Cached {
			agg.cached++
		}
		start := time.Now()
		var (
			res bool
			err error
		)
		switch {
		case len(rec.Labels) > 0:
			res, err = e.QueryAllowed(rec.S, rec.T, rec.Labels...)
		case rec.Alpha != "":
			res, err = e.Query(rec.S, rec.T, rec.Alpha)
		default:
			res, err = e.Reach(rec.S, rec.T)
		}
		d := time.Since(start).Nanoseconds()
		if err != nil {
			agg.errors++
			continue
		}
		agg.replayNS += d
		agg.lat = append(agg.lat, d)
		if res != rec.Outcome {
			agg.mismatches++
		}
	}
	sort.Strings(order)
	sum := &ReplaySummary{Records: len(recs)}
	for _, route := range order {
		agg := byRoute[route]
		p50, p99 := percentiles(agg.lat)
		sum.Decided += agg.n - agg.errors
		sum.Routes = append(sum.Routes, RouteSummary{
			Route:      route,
			Queries:    agg.n,
			Cached:     agg.cached,
			CaptureNS:  agg.captureNS,
			ReplayNS:   agg.replayNS,
			Mismatches: agg.mismatches,
			Errors:     agg.errors,
			P50NS:      p50,
			P99NS:      p99,
		})
	}
	return sum
}

// Record aliases the workload record: the advisor's trace input type.
type Record = workload.Record

type routeAgg struct {
	n, cached, mismatches, errors int
	captureNS, replayNS           int64
	lat                           []int64
}

// percentiles sorts lat in place and returns its p50/p99 by the
// nearest-rank-on-floor convention (the gen.DegreeStats one).
func percentiles(lat []int64) (p50, p99 int64) {
	if len(lat) == 0 {
		return 0, 0
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	n := len(lat)
	return lat[(n-1)*50/100], lat[(n-1)*99/100]
}
