package advise

import (
	"context"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/traversal"
	"repro/internal/workload"
)

// Measurement is one engine's replayed cost on the scorable trace:
// per-query latency percentiles plus the mismatch count against the
// captured outcomes.
type Measurement struct {
	Queries    int   `json:"queries"`
	Mismatches int   `json:"mismatches"`
	P50NS      int64 `json:"p50_ns"`
	P99NS      int64 `json:"p99_ns"`
}

// MeasurePlain replays the plain pairs against ix. Each record's latency
// sample is the mean of reps back-to-back probes — index probes run in
// tens of nanoseconds, below the clock's useful resolution for a single
// call, and the advisor compares p99s across candidates, so per-sample
// noise must stay well under the real differences.
func MeasurePlain(ix core.Index, pairs []workload.Record, reps int) Measurement {
	if reps <= 0 {
		reps = 1
	}
	m := Measurement{Queries: len(pairs)}
	lat := make([]int64, 0, len(pairs))
	for i := range pairs {
		rec := &pairs[i]
		s, t := graph.V(rec.S), graph.V(rec.T)
		start := time.Now()
		res := false
		for r := 0; r < reps; r++ {
			res = ix.Reach(s, t)
		}
		lat = append(lat, time.Since(start).Nanoseconds()/int64(reps))
		if res != rec.Outcome {
			m.Mismatches++
		}
	}
	m.P50NS, m.P99NS = percentiles(lat)
	return m
}

// measureBaseline replays the pairs index-free: one BFS per query, the
// cost of serving the trace with no index at all.
func measureBaseline(g *graph.Digraph, pairs []workload.Record, reps int) Measurement {
	return MeasurePlain(bfsIndex{g}, pairs, reps)
}

type bfsIndex struct{ g *graph.Digraph }

func (b bfsIndex) Name() string            { return "none" }
func (b bfsIndex) Reach(s, t graph.V) bool { return traversal.BFS(b.g, s, t) }
func (b bfsIndex) Stats() (st core.Stats)  { return st }

// evaluate builds and measures every candidate, then fills the report's
// chosen/best/regret fields. Build failures and timeouts mark the
// candidate infeasible instead of failing the run; a panic inside a
// build is contained by the builder (core.Recover in BuildCtx) and
// arrives here as an error.
func evaluate(ctx context.Context, rep *Report, shortlist []Candidate, pairs []workload.Record, cfg Config) {
	built := make([]core.Index, len(shortlist))
	for i := range shortlist {
		cand := &shortlist[i]
		bctx, cancel := context.WithTimeout(ctx, cfg.BuildTimeout)
		start := time.Now()
		ix, err := cfg.Build(bctx, cand.Kind)
		cand.BuildNS = time.Since(start).Nanoseconds()
		cancel()
		if err != nil {
			cand.Error = err.Error()
			continue
		}
		cand.Feasible = true
		if b, ok := core.SizesOf(ix); ok {
			cand.Bytes = b.Total()
		} else {
			cand.Bytes = ix.Stats().Bytes
		}
		cand.OverBudget = cfg.Budget > 0 && int64(cand.Bytes) > cfg.Budget
		cand.Measurement = MeasurePlain(ix, pairs, cfg.Reps)
		built[i] = ix
	}
	rep.Candidates = shortlist

	// Choose: lowest p99 among feasible in-budget candidates; if nothing
	// fits the budget, fall back to the feasible field. Near-ties (within
	// 10% of the front-runner's p99) break toward the smaller footprint.
	choose := func(requireBudget bool) int {
		best := -1
		for i := range shortlist {
			c := &shortlist[i]
			if !c.Feasible || (requireBudget && c.OverBudget) {
				continue
			}
			if best < 0 || c.P99NS < shortlist[best].P99NS {
				best = i
			}
		}
		if best < 0 {
			return best
		}
		pick := best
		for i := range shortlist {
			c := &shortlist[i]
			if i == best || !c.Feasible || (requireBudget && c.OverBudget) {
				continue
			}
			nearTie := float64(c.P99NS) <= 1.10*float64(shortlist[best].P99NS)
			if nearTie && c.Bytes < shortlist[pick].Bytes {
				pick = i
			}
		}
		return pick
	}
	chosen := choose(true)
	if chosen < 0 {
		chosen = choose(false)
	}
	if chosen >= 0 {
		rep.Chosen = shortlist[chosen].Kind
		rep.ChosenP50NS = shortlist[chosen].P50NS
		rep.ChosenP99NS = shortlist[chosen].P99NS
		if cfg.KeepChosen {
			rep.chosen = built[chosen]
		}
	}

	// Best is the raw p99 argmin over everything measured, budget or not:
	// the regret denominator.
	for i := range shortlist {
		c := &shortlist[i]
		if !c.Feasible {
			continue
		}
		if rep.Best == "" || c.P99NS < rep.BestP99NS {
			rep.Best = c.Kind
			rep.BestP99NS = c.P99NS
		}
	}
	if rep.BestP99NS > 0 {
		rep.Regret = float64(rep.ChosenP99NS) / float64(rep.BestP99NS)
	}
}
