// Package advise implements the workload-adaptive index advisor: given a
// graph and a recorded query trace, it profiles both, short-lists index
// kinds from a rule table distilled from the survey's taxonomy (which
// index wins depends on graph shape, query mix, and budget — §6), then
// measures every short-listed candidate for real — a time-boxed build
// plus a trace replay — and picks by measured p99, not by rule alone.
// The rules only prune the search space; measurement decides.
//
// The package is deliberately below the root: it speaks core.Index and
// workload.Record, and the root package injects the actual builder
// (reach.BuildCtx) as a BuildFunc, the same inversion internal/shard
// uses. DBConfig.AutoTune (root autotune.go) reuses Run under live
// traffic to shadow-build and hot-swap the pick.
package advise

import (
	"context"
	"errors"
	"time"

	"repro/internal/core"
	"repro/internal/workload"
)

// BuildFunc builds one plain index kind over the advisor's graph. The
// root package supplies reach.BuildCtx closed over the graph and its
// PreparedGraph memo, so every candidate build shares one condensation.
type BuildFunc func(ctx context.Context, kind string) (core.Index, error)

// Config parameterizes one advisor run.
type Config struct {
	// Build constructs a candidate index by kind name. Required.
	Build BuildFunc
	// Candidates overrides the rule-table shortlist with an explicit kind
	// list (used by benchmarks to measure the full field, and by
	// AutoTune operators who want to restrict the search).
	Candidates []string
	// MaxCandidates caps the rule-table shortlist. Default 5.
	MaxCandidates int
	// BuildTimeout time-boxes each candidate build; a candidate that
	// cannot build in time is reported infeasible rather than failing the
	// run. Default 30s.
	BuildTimeout time.Duration
	// Budget, when > 0, is the index footprint budget in bytes.
	// Candidates over budget still get measured but are not eligible to
	// be chosen unless nothing fits.
	Budget int64
	// MaxReplay caps the plain records replayed per candidate (0 = all).
	MaxReplay int
	// Reps is how many times each replayed query runs per latency sample
	// (the per-record latency is the mean of Reps runs, damping clock
	// granularity on sub-microsecond index probes). Default 8.
	Reps int
	// KeepChosen retains the winning candidate's built index, retrievable
	// via Report.ChosenIndex — the auto-tuner's hot-swap input. Default
	// false: all candidate indexes are released after measurement.
	KeepChosen bool
}

// Report is the advisor's full output, JSON-shaped for `reachcli advise
// -json` and /admin/advise.
type Report struct {
	Graph    GraphProfile    `json:"graph"`
	Workload WorkloadProfile `json:"workload"`
	// Baseline is the index-free replay (plain BFS per query): the cost
	// of serving the trace with no index at all.
	Baseline    Measurement `json:"baseline"`
	BudgetBytes int64       `json:"budget_bytes,omitempty"`
	Candidates  []Candidate `json:"candidates"`
	// Chosen is the advisor's pick: lowest replayed p99 among feasible,
	// in-budget candidates (footprint breaks near-ties).
	Chosen      string  `json:"chosen"`
	ChosenP50NS int64   `json:"chosen_p50_ns"`
	ChosenP99NS int64   `json:"chosen_p99_ns"`
	Best        string  `json:"best"`
	BestP99NS   int64   `json:"best_p99_ns"`
	Regret      float64 `json:"regret"` // ChosenP99NS / BestP99NS; 1.0 = optimal among measured

	chosen core.Index // retained only under Config.KeepChosen
}

// ChosenIndex returns the built index of the chosen candidate when the
// run was configured with KeepChosen.
func (r *Report) ChosenIndex() (core.Index, bool) {
	return r.chosen, r.chosen != nil
}

// ErrNoTrace is returned when the trace has no scorable plain records
// (everything was cached, labeled, or out of range).
var ErrNoTrace = errors.New("advise: trace has no uncached plain records to score")

// ErrNoCandidate is returned when no candidate could be measured —
// every build failed or timed out. The report still carries the
// per-candidate errors for diagnosis.
var ErrNoCandidate = errors.New("advise: no feasible candidate")

// Run executes the advisor: profile graph and trace, shortlist, measure
// every candidate plus the index-free baseline, and choose.
func Run(ctx context.Context, prep *core.Prepared, recs []workload.Record, cfg Config) (*Report, error) {
	if cfg.Build == nil {
		return nil, errors.New("advise: Config.Build is required")
	}
	if cfg.MaxCandidates <= 0 {
		cfg.MaxCandidates = 5
	}
	if cfg.BuildTimeout <= 0 {
		cfg.BuildTimeout = 30 * time.Second
	}
	if cfg.Reps <= 0 {
		cfg.Reps = 8
	}
	g := prep.Graph()
	rep := &Report{
		Graph:       ProfileGraph(prep),
		Workload:    ProfileWorkload(recs, g.N()),
		BudgetBytes: cfg.Budget,
	}
	pairs := PlainPairs(recs, g.N(), cfg.MaxReplay)
	if len(pairs) == 0 {
		return rep, ErrNoTrace
	}
	var shortlist []Candidate
	if len(cfg.Candidates) > 0 {
		for _, k := range cfg.Candidates {
			shortlist = append(shortlist, Candidate{Kind: k, Reason: "explicit candidate list"})
		}
	} else {
		shortlist = Shortlist(rep.Graph, rep.Workload, cfg.MaxCandidates)
	}
	rep.Baseline = measureBaseline(g, pairs, 1)
	evaluate(ctx, rep, shortlist, pairs, cfg)
	if rep.Chosen == "" {
		return rep, ErrNoCandidate
	}
	return rep, nil
}
