package reach

// This file is the public face of the hardened serving layer: the typed
// error set every entry point reports through, and the Options validation
// shared by the Build* family and the DB constructors. See DESIGN.md
// ("Failure model") for the contract.

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/core"
)

// The typed error set. Every public entry point reports failures that
// wrap exactly one of these sentinels, so callers can dispatch with
// errors.Is regardless of which index kind produced the failure.
var (
	// ErrVertexRange reports a query vertex outside [0, g.N()).
	ErrVertexRange = core.ErrVertexRange
	// ErrBadOptions reports invalid build options or an unusable input
	// graph (nil, or unlabeled where labels are required).
	ErrBadOptions = core.ErrBadOptions
	// ErrBadQuery reports a malformed path-constraint expression, or a
	// constraint that cannot be answered on this graph (a genuinely
	// labeled constraint over an unlabeled graph).
	ErrBadQuery = core.ErrBadQuery
	// ErrBuildCanceled reports a build abandoned at a cooperative
	// checkpoint because its context was canceled.
	ErrBuildCanceled = core.ErrBuildCanceled
	// ErrIndexPanic reports a panic inside an index implementation that
	// was contained at the public boundary instead of crashing the caller.
	ErrIndexPanic = core.ErrIndexPanic
)

// ErrNotMutable reports a mutation (AddEdge/RemoveEdge/mutate endpoint)
// against a DB built without DBConfig.Mutation.
var ErrNotMutable = errors.New("reach: DB is not mutable (no DBConfig.Mutation)")

// validate rejects option values no technique can interpret. Zero values
// are always fine (they select defaults); negatives are never meaningful.
func (o Options) validate() error {
	switch {
	case o.K < 0:
		return fmt.Errorf("%w: K = %d (want >= 0)", ErrBadOptions, o.K)
	case o.Bits < 0:
		return fmt.Errorf("%w: Bits = %d (want >= 0)", ErrBadOptions, o.Bits)
	case o.MaxSeq < 0:
		return fmt.Errorf("%w: MaxSeq = %d (want >= 0)", ErrBadOptions, o.MaxSeq)
	case o.Workers < 0:
		return fmt.Errorf("%w: Workers = %d (want >= 0)", ErrBadOptions, o.Workers)
	case o.LabelEnc > EncVarint:
		return fmt.Errorf("%w: LabelEnc = %d (want EncRaw or EncVarint)", ErrBadOptions, o.LabelEnc)
	}
	return nil
}

// checkPrepared rejects a preprocessing memo bound to a different graph —
// reusing another graph's condensation would answer queries against the
// wrong component structure, so the mismatch fails fast as a
// configuration error.
func checkPrepared(g *Graph, opt Options) error {
	if opt.Prepared != nil && opt.Prepared.Graph() != g {
		return fmt.Errorf("%w: Options.Prepared is bound to a different graph", ErrBadOptions)
	}
	return nil
}

// StatusCode maps an error from this package's query and build entry
// points to the HTTP status the serving layer (internal/server) reports:
//
//	nil                        → 200
//	ErrVertexRange, ErrBadQuery,
//	ErrBadOptions              → 400 (caller error; retrying is pointless)
//	context.DeadlineExceeded,
//	ErrBuildCanceled           → 504 (the per-request deadline fired)
//	context.Canceled           → 499 (client went away; nobody is reading)
//	ErrNotMutable              → 501 (endpoint exists, DB lacks the feature)
//	ErrIndexPanic, anything else → 500
//
// Degraded-mode serving never reaches this table: a DB built with
// DBConfig.Degraded answers its degraded routes with nil errors (exact,
// index-free), so those requests stay 200.
func StatusCode(err error) int {
	switch {
	case err == nil:
		return 200
	case errors.Is(err, ErrVertexRange), errors.Is(err, ErrBadQuery), errors.Is(err, ErrBadOptions):
		return 400
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, ErrBuildCanceled):
		return 504
	case errors.Is(err, context.Canceled):
		return 499
	case errors.Is(err, ErrNotMutable):
		return 501
	default:
		return 500
	}
}

// checkBuild is the shared precondition gate of the Build* family: a
// usable graph, valid options, and a context that is still live. A
// context already canceled before any work maps to ErrBuildCanceled just
// like a mid-build cancellation would.
func checkBuild(ctx context.Context, g *Graph, opt Options) error {
	if g == nil {
		return fmt.Errorf("%w: nil graph", ErrBadOptions)
	}
	if err := opt.validate(); err != nil {
		return err
	}
	if err := checkPrepared(g, opt); err != nil {
		return err
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("%w (before build start): %v", ErrBuildCanceled, err)
		}
	}
	return nil
}
