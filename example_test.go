package reach_test

import (
	"fmt"

	reach "repro"
)

// ExampleBuild indexes the paper's Figure 1(a) plain graph and answers
// the §2.1 running-example query.
func ExampleBuild() {
	g := reach.Fig1Plain()
	ix, err := reach.Build(reach.KindBFL, g, reach.Options{})
	if err != nil {
		panic(err)
	}
	a, _ := g.VertexByName("A")
	t, _ := g.VertexByName("G")
	fmt.Println(ix.Reach(a, t))
	// Output: true
}

// ExampleNewDB routes the paper's three constraint classes to their
// indexes on the Figure 1(b) labeled graph.
func ExampleNewDB() {
	db, err := reach.NewDB(reach.Fig1Labeled(), reach.DBConfig{})
	if err != nil {
		panic(err)
	}
	g := db.Graph()
	a, _ := g.VertexByName("A")
	t, _ := g.VertexByName("G")
	l, _ := g.VertexByName("L")
	b, _ := g.VertexByName("B")

	alternation, _ := db.Query(a, t, "(friendOf|follows)*")    // LCR index
	concatenation, _ := db.Query(l, b, "(worksFor.friendOf)*") // RLC index
	general, _ := db.Query(a, t, "friendOf.friendOf.worksFor") // product search
	fmt.Println(alternation, concatenation, general)
	// Output: false true true
}

// ExampleDB_ReachPath recovers the concrete witness path (A, D, H, G) the
// paper names for Qr(A, G).
func ExampleDB_ReachPath() {
	db, _ := reach.NewDB(reach.Fig1Plain(), reach.DBConfig{Plain: reach.KindTreeCover})
	g := db.Graph()
	a, _ := g.VertexByName("A")
	t, _ := g.VertexByName("G")
	path, _ := db.ReachPath(a, t)
	for _, v := range path {
		fmt.Print(g.VertexName(v), " ")
	}
	fmt.Println()
	// Output: A D H G
}

// ExampleBuildConstraint builds a dedicated index for one fixed
// non-indexable constraint (§5's general-fragment challenge).
func ExampleBuildConstraint() {
	g := reach.Fig1Labeled()
	ix, err := reach.BuildConstraint(g, "follows.(worksFor)+")
	if err != nil {
		panic(err)
	}
	a, _ := g.VertexByName("A")
	m, _ := g.VertexByName("M")
	fmt.Println(ix.Reach(a, m))
	// Output: true
}
