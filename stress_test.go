package reach

// Stress sweeps: every index kind cross-validated against the exact
// oracles over many random graph families and seeds. These widen the
// per-package conformance tests with cross-family coverage; skipped under
// -short.

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/gen"
	"repro/internal/labelset"
	"repro/internal/tc"
)

func stressGraphs(seed int64) map[string]*Graph {
	return map[string]*Graph{
		"dag-sparse": gen.RandomDAG(gen.Config{N: 150, M: 220, Seed: seed}),
		"dag-dense":  gen.RandomDAG(gen.Config{N: 90, M: 800, Seed: seed}),
		"er":         gen.ErdosRenyi(gen.Config{N: 100, M: 350, Seed: seed}),
		"scalefree":  gen.ScaleFree(140, 3, seed),
		"layered":    gen.LayeredDAG(8, 12, 2, seed),
		"treeplus":   gen.TreePlus(130, 30, seed),
	}
}

func TestStressAllPlainKinds(t *testing.T) {
	if testing.Short() {
		t.Skip("stress sweep")
	}
	for seed := int64(100); seed < 103; seed++ {
		for name, g := range stressGraphs(seed) {
			oracle := tc.NewClosure(g)
			for _, k := range Kinds() {
				ix, err := Build(k, g, Options{Seed: seed, K: 2, Bits: 128})
				if err != nil {
					t.Fatalf("%s/%s: %v", name, k, err)
				}
				rng := rand.New(rand.NewSource(seed * 7))
				for q := 0; q < 400; q++ {
					s := V(rng.Intn(g.N()))
					tt := V(rng.Intn(g.N()))
					if got, want := ix.Reach(s, tt), oracle.Reach(s, tt); got != want {
						t.Fatalf("seed %d %s/%s: Reach(%d,%d) = %v, want %v",
							seed, name, k, s, tt, got, want)
					}
				}
			}
		}
	}
}

func TestStressAllLCRKinds(t *testing.T) {
	if testing.Short() {
		t.Skip("stress sweep")
	}
	for seed := int64(200); seed < 203; seed++ {
		for _, labels := range []int{2, 5} {
			g := gen.Zipf(gen.ErdosRenyi(gen.Config{N: 60, M: 220, Seed: seed}), labels, 0.6, seed+1)
			oracle := tc.NewGTC(g)
			for _, k := range LCRKinds() {
				ix, err := BuildLCR(k, g, Options{K: 8, Bits: 128, Seed: seed})
				if err != nil {
					t.Fatalf("%s: %v", k, err)
				}
				rng := rand.New(rand.NewSource(seed * 13))
				for q := 0; q < 500; q++ {
					s := V(rng.Intn(g.N()))
					tt := V(rng.Intn(g.N()))
					mask := labelset.Set(rng.Int63n(1 << uint(labels)))
					want := s == tt || oracle.ReachLC(s, tt, mask)
					if got := ix.ReachLC(s, tt, mask); got != want {
						t.Fatalf("seed %d |L|=%d %s: ReachLC(%d,%d,%b) = %v, want %v",
							seed, labels, k, s, tt, mask, got, want)
					}
				}
			}
		}
	}
}

func TestStressDynamicInterleaved(t *testing.T) {
	if testing.Short() {
		t.Skip("stress sweep")
	}
	// Interleave updates and query audits on every dynamic kind across
	// multiple seeds; DBL only sees insertions.
	for seed := int64(300); seed < 303; seed++ {
		for _, k := range []Kind{KindTOL, KindDAGGER} {
			g := gen.RandomDAG(gen.Config{N: 70, M: 170, Seed: seed})
			ix, err := BuildDynamic(k, g, Options{K: 2, Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			script := gen.UpdateScript(g, 40, true, seed+1)
			cur := mutableCopy(g)
			rng := rand.New(rand.NewSource(seed * 17))
			for i, op := range script {
				if op.Insert {
					cur.insert(op.Edge.From, op.Edge.To)
					if err := ix.InsertEdge(op.Edge.From, op.Edge.To); err != nil {
						t.Fatal(err)
					}
				} else {
					cur.remove(op.Edge.From, op.Edge.To)
					if err := ix.DeleteEdge(op.Edge.From, op.Edge.To); err != nil {
						t.Fatal(err)
					}
				}
				oracle := tc.NewClosure(cur.freeze())
				for q := 0; q < 50; q++ {
					s := V(rng.Intn(g.N()))
					tt := V(rng.Intn(g.N()))
					if got, want := ix.Reach(s, tt), oracle.Reach(s, tt); got != want {
						t.Fatalf("seed %d %s op %d: (%d,%d) = %v want %v",
							seed, k, i, s, tt, got, want)
					}
				}
			}
		}
	}
}

// TestStressMetricsConcurrent hammers an instrumented index from many
// goroutines while another goroutine snapshots the metrics continuously:
// snapshots must be race-free (run under -race in CI) and every counter
// monotone, and the final totals must equal the submitted load exactly.
func TestStressMetricsConcurrent(t *testing.T) {
	g := gen.RandomDAG(gen.Config{N: 300, M: 900, Seed: 42})
	raw, err := Build(KindBFL, g, Options{Bits: 128})
	if err != nil {
		t.Fatal(err)
	}
	var m IndexMetrics
	ix := Instrument(raw, g, &m)
	oracle := tc.NewClosure(g)

	const workers, per = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + w)))
			for i := 0; i < per; i++ {
				s := V(rng.Intn(g.N()))
				tt := V(rng.Intn(g.N()))
				if got, want := ix.Reach(s, tt), oracle.Reach(s, tt); got != want {
					t.Errorf("Reach(%d,%d) = %v, want %v", s, tt, got, want)
					return
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		var last IndexMetricsSnapshot
		for i := 0; i < 500; i++ {
			s := m.Snapshot()
			// Decided is excluded: it is derived (Queries-Fallback) from
			// counters read at different instants, so it may transiently
			// overestimate under load; every stored counter is monotone.
			if s.Queries < last.Queries || s.Positive < last.Positive ||
				s.Negative < last.Negative ||
				s.Fallback < last.Fallback || s.Visited < last.Visited {
				t.Errorf("snapshot regressed: %+v -> %+v", last, s)
				return
			}
			last = s
		}
	}()
	wg.Wait()
	<-done

	s := m.Snapshot()
	const total = workers * per
	if s.Queries != total {
		t.Fatalf("queries = %d, want %d", s.Queries, total)
	}
	if s.Positive+s.Negative != total {
		t.Fatalf("positive+negative = %d, want %d", s.Positive+s.Negative, total)
	}
	if s.Decided+s.Fallback != total {
		t.Fatalf("decided+fallback = %d, want %d", s.Decided+s.Fallback, total)
	}
	// Latency is sampled, so the histogram holds a subset of the load;
	// it must still be nonempty and never exceed the true total.
	if s.Latency.Count == 0 || s.Latency.Count > total {
		t.Fatalf("latency count = %d, want in 1..%d", s.Latency.Count, total)
	}
}

// mutableCopy is a tiny edge-set mirror for the stress scripts.
type mutableCopy2 struct {
	n     int
	edges map[[2]V]bool
}

func mutableCopy(g *Graph) *mutableCopy2 {
	m := &mutableCopy2{n: g.N(), edges: map[[2]V]bool{}}
	for _, e := range g.EdgeList() {
		m.edges[[2]V{e.From, e.To}] = true
	}
	return m
}

func (m *mutableCopy2) insert(u, v V) { m.edges[[2]V{u, v}] = true }
func (m *mutableCopy2) remove(u, v V) { delete(m.edges, [2]V{u, v}) }
func (m *mutableCopy2) freeze() *Graph {
	b := NewBuilder(m.n)
	for e := range m.edges {
		b.AddEdge(e[0], e[1])
	}
	g, _ := b.Freeze()
	return g
}
