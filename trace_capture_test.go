package reach

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/obs"
)

// TestDBTracingPhases threads a trace through every query entry point
// and checks the DB appends the phase timeline OBSERVABILITY.md
// documents — and that with Tracing off, a trace in the context is
// deliberately ignored (the disabled path never walks the context).
func TestDBTracingPhases(t *testing.T) {
	db, err := NewDB(Fig1Labeled(), DBConfig{Tracing: true, Metrics: true, CacheSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	tracer := obs.NewTracer(8, 0)

	phasesOf := func(run func(ctx context.Context)) []string {
		tr := tracer.Start("")
		run(obs.WithTrace(context.Background(), tr))
		rec, _ := tracer.Finish(tr)
		var names []string
		for _, p := range rec.Phases {
			names = append(names, p.Name)
		}
		return names
	}
	has := func(names []string, want string) bool {
		for _, n := range names {
			if n == want {
				return true
			}
		}
		return false
	}

	names := phasesOf(func(ctx context.Context) {
		if _, err := db.ReachCtx(ctx, 0, 4); err != nil {
			t.Fatalf("ReachCtx: %v", err)
		}
	})
	for _, want := range []string{"cache/lookup", "index/probe"} {
		if !has(names, want) {
			t.Fatalf("ReachCtx phases %v missing %q", names, want)
		}
	}

	names = phasesOf(func(ctx context.Context) {
		if _, err := db.QueryCtx(ctx, 0, 4, "(friendOf|follows)*"); err != nil {
			t.Fatalf("QueryCtx: %v", err)
		}
	})
	if !has(names, "parse") {
		t.Fatalf("QueryCtx phases %v missing parse", names)
	}

	// Tracing disabled: the same context-carried trace stays empty.
	off, err := NewDB(Fig1Labeled(), DBConfig{})
	if err != nil {
		t.Fatal(err)
	}
	tr := tracer.Start("")
	if _, err := off.ReachCtx(obs.WithTrace(context.Background(), tr), 0, 4); err != nil {
		t.Fatalf("ReachCtx: %v", err)
	}
	if got := len(tr.Phases()); got != 0 {
		t.Fatalf("untraced DB recorded %d phases", got)
	}
	tracer.Finish(tr)
}

// TestDBWorkloadCapture runs queries through a recording DB and checks
// the capture round-trips with the right shapes per entry point.
func TestDBWorkloadCapture(t *testing.T) {
	var buf bytes.Buffer
	rec := NewWorkloadRecorder(&buf)
	db, err := NewDB(Fig1Labeled(), DBConfig{RecordWorkload: rec})
	if err != nil {
		t.Fatal(err)
	}

	wantReach, err := db.Reach(0, 4)
	if err != nil {
		t.Fatal(err)
	}
	alpha := "(friendOf|follows)*"
	if _, err := db.Query(0, 4, alpha); err != nil {
		t.Fatal(err)
	}
	if _, err := db.QueryAllowed(0, 4, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := rec.Close(); err != nil {
		t.Fatalf("recorder close: %v", err)
	}

	records, err := ReadWorkload(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadWorkload: %v", err)
	}
	if len(records) != 3 {
		t.Fatalf("captured %d records, want 3", len(records))
	}
	r0 := records[0]
	if r0.S != 0 || r0.T != 4 || r0.Alpha != "" || r0.Labels != nil {
		t.Fatalf("reach record = %+v", r0)
	}
	if r0.Outcome != wantReach {
		t.Fatalf("reach outcome = %v, want %v", r0.Outcome, wantReach)
	}
	if r0.Route == "" || r0.Latency <= 0 {
		t.Fatalf("reach record missing route/latency: %+v", r0)
	}
	if records[1].Alpha != alpha {
		t.Fatalf("query record alpha = %q, want %q", records[1].Alpha, alpha)
	}
	if got := records[2].Labels; len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("allowed record labels = %v, want [0 1]", got)
	}

	// Replaying a record against the same DB reproduces the outcome —
	// the invariant `reachcli replay` counts mismatches against.
	for _, r := range records {
		var got bool
		switch {
		case len(r.Labels) > 0:
			labels := make([]Label, len(r.Labels))
			for i, l := range r.Labels {
				labels[i] = Label(l)
			}
			got, err = db.QueryAllowed(V(r.S), V(r.T), labels...)
		case r.Alpha != "":
			got, err = db.Query(V(r.S), V(r.T), r.Alpha)
		default:
			got, err = db.Reach(V(r.S), V(r.T))
		}
		if err != nil {
			t.Fatalf("replay %+v: %v", r, err)
		}
		if got != r.Outcome {
			t.Fatalf("replay %+v: outcome %v", r, got)
		}
	}
}
