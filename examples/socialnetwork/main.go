// Social-network analytics with label-constrained reachability — the
// paper's §2.2 motivation ("social relationships analysis in social
// networks").
//
// Generates a scale-free social graph with three relationship kinds
// (follows, friendOf, worksFor; Zipf-skewed like real platforms), then
// answers analytics questions with three different engines — online
// LCR-BFS, the landmark index, and P2H+ — reporting agreement and timing.
//
//	go run ./examples/socialnetwork
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	reach "repro"
	"repro/internal/gen"
	"repro/internal/labelset"
	"repro/internal/traversal"
)

func main() {
	const n = 4000
	base := gen.ScaleFree(n, 4, 7)
	g := gen.Zipf(base, 3, 1.0, 8) // labels 0..2
	fmt.Printf("social graph: %d members, %d relationships, labels = follows/friendOf/worksFor\n",
		g.N(), g.M())

	landmark, err := reach.BuildLCR(reach.LCRLandmark, g, reach.Options{K: 64})
	if err != nil {
		log.Fatal(err)
	}
	p2h, err := reach.BuildLCR(reach.LCRP2H, g, reach.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("landmark index: %v build, %d entries\n",
		landmark.Stats().BuildTime, landmark.Stats().Entries)
	fmt.Printf("P2H+ index:     %v build, %d entries\n",
		p2h.Stats().BuildTime, p2h.Stats().Entries)

	// Analytics: "is member t in s's extended social circle?" — pure
	// follows/friendOf paths, no professional edges (the paper's A→G
	// query shape).
	social := labelset.Set(0b011) // follows | friendOf
	rng := rand.New(rand.NewSource(9))

	type engine struct {
		name string
		f    func(s, t reach.V) bool
	}
	engines := []engine{
		{"LCR-BFS  ", func(s, t reach.V) bool {
			return traversal.LabelConstrainedBFS(g, s, t, uint64(social))
		}},
		{"landmark ", func(s, t reach.V) bool { return s == t || landmark.ReachLC(s, t, social) }},
		{"P2H+     ", func(s, t reach.V) bool { return s == t || p2h.ReachLC(s, t, social) }},
	}

	const queries = 3000
	pairs := make([][2]reach.V, queries)
	for i := range pairs {
		pairs[i] = [2]reach.V{reach.V(rng.Intn(n)), reach.V(rng.Intn(n))}
	}
	answers := make([][]bool, len(engines))
	fmt.Printf("\n%d social-circle queries (labels ⊆ {follows, friendOf}):\n", queries)
	for ei, e := range engines {
		answers[ei] = make([]bool, queries)
		start := time.Now()
		pos := 0
		for i, p := range pairs {
			answers[ei][i] = e.f(p[0], p[1])
			if answers[ei][i] {
				pos++
			}
		}
		el := time.Since(start)
		fmt.Printf("  %s %8d positive, total %10v (%v/query)\n",
			e.name, pos, el, el/time.Duration(queries))
	}
	for i := range pairs {
		if answers[0][i] != answers[1][i] || answers[1][i] != answers[2][i] {
			log.Fatalf("engines disagree on pair %v", pairs[i])
		}
	}
	fmt.Println("  all engines agree ✓")

	// A richer question: who can a given member reach professionally
	// (worksFor chains) but not socially? The kind of per-source scan a
	// complete LCR index makes cheap.
	src := reach.V(0)
	prof, socialOnly := 0, 0
	for t := reach.V(0); int(t) < n; t++ {
		if t == src {
			continue
		}
		viaWork := p2h.ReachLC(src, t, labelset.Of(2))
		viaSocial := p2h.ReachLC(src, t, social)
		if viaWork && !viaSocial {
			prof++
		}
		if viaSocial && !viaWork {
			socialOnly++
		}
	}
	fmt.Printf("\nmember %d reaches %d members only professionally, %d only socially\n",
		src, prof, socialOnly)
}
