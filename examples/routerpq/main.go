// Regular-path-constraint routing — the §5 challenge that "existing
// solutions can only deal with a specific type of path constraint".
//
// Builds a labeled knowledge-graph-flavoured dataset and throws the full
// α grammar at DB.Query: alternation-star constraints route to the LCR
// index, concatenation-star to the RLC index, and everything else to
// product-automaton search. Prints which engine served each query.
//
//	go run ./examples/routerpq
package main

import (
	"fmt"
	"log"
	"time"

	reach "repro"
	"repro/internal/gen"
	"repro/internal/regexpath"
)

func main() {
	base := gen.ErdosRenyi(gen.Config{N: 2000, M: 9000, Seed: 41})
	g := gen.Zipf(base, 4, 0.7, 42)
	// Name the labels like a tiny knowledge graph.
	// (Zipf assigns ids 0..3; we refer to them by synthesized names l0..l3
	// below since the generator doesn't register names.)
	db, err := reach.NewDB(g, reach.DBConfig{Options: reach.Options{MaxSeq: 2, K: 32}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: n=%d m=%d |L|=%d\n\n", g.N(), g.M(), g.Labels())

	queries := []string{
		"(l0|l1)*",       // alternation → LCR index
		"(l0|l1|l2|l3)+", // alternation plus → LCR index
		"l2*",            // single-label star → LCR index
		"(l0.l1)*",       // concatenation → RLC index
		"(l1.l0)+",       // concatenation plus → RLC index
		"l0.l1.l2",       // fixed shape → product search
		"(l0.l1|l2)*",    // mixed → product search
		"l0.(l1|l2)*",    // prefix + star → product search
	}
	resolver := regexpath.GraphResolver(g)
	pairs := [][2]reach.V{{0, 99}, {5, 1500}, {17, 17}, {123, 456}}
	// Register one "hot" general constraint (§5: practical query logs have
	// many non-indexable shapes): it then answers from lookups.
	hot := "(l0.l1|l2)*"
	if err := db.RegisterConstraint(hot); err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	const reps = 2000
	for i := 0; i < reps; i++ {
		if _, err := db.Query(reach.V(i%2000), reach.V((i*31)%2000), hot); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("registered constraint %q: %v/query over %d queries\n\n",
		hot, time.Since(start)/reps, reps)

	for _, alpha := range queries {
		ast, err := regexpath.Parse(alpha, resolver)
		if err != nil {
			log.Fatal(err)
		}
		class := regexpath.Classify(ast).Class
		engine := map[regexpath.Class]string{
			regexpath.ClassAlternation:   "LCR index",
			regexpath.ClassConcatenation: "RLC index",
			regexpath.ClassGeneral:       "product search",
		}[class]
		fmt.Printf("α = %-14s → %-14s :", alpha, engine)
		for _, p := range pairs {
			got, err := db.Query(p[0], p[1], alpha)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" Qr(%d,%d)=%-5v", p[0], p[1], got)
		}
		fmt.Println()
	}
}
