// Quickstart: the paper's Figure 1 running example, end to end.
//
// Builds the plain graph (a) and the edge-labeled graph (b), constructs
// one index per query class, and replays every worked example from the
// tutorial text — printing the claim, the paper's stated answer, and the
// library's answer.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	reach "repro"
)

func main() {
	// --- plain reachability (§2.1) -----------------------------------
	plain := reach.Fig1Plain()
	ix, err := reach.Build(reach.KindBFL, plain, reach.Options{})
	if err != nil {
		log.Fatal(err)
	}
	a, _ := plain.VertexByName("A")
	g, _ := plain.VertexByName("G")
	fmt.Printf("Qr(A,G) = %v                      (paper: true, via path A,D,H,G)\n",
		ix.Reach(a, g))

	// --- path-constrained reachability (§2.2, §4) --------------------
	labeled := reach.Fig1Labeled()
	db, err := reach.NewDB(labeled, reach.DBConfig{
		Plain:   reach.KindBFL,
		LCR:     reach.LCRP2H,
		Options: reach.Options{MaxSeq: 2},
	})
	if err != nil {
		log.Fatal(err)
	}
	v := func(name string) reach.V {
		x, ok := labeled.VertexByName(name)
		if !ok {
			log.Fatalf("no vertex %q", name)
		}
		return x
	}

	q := func(s, t, alpha, paperSays string) {
		got, err := db.Query(v(s), v(t), alpha)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("Qr(%s,%s, %s) = %-5v (paper: %s)\n", s, t, alpha, got, paperSays)
	}

	// §2.2: alternation constraint — LCR index answers.
	q("A", "G", "(friendOf|follows)*", "false — every A→G path uses worksFor")
	// §4.1: the SPLS foundations — L reaches M with worksFor alone.
	q("L", "M", "worksFor*", "true — p1 = (L,worksFor,C,worksFor,M)")
	q("A", "M", "(follows|worksFor)*", "true — SPLS(A,M) = {follows,worksFor}")
	q("A", "M", "(friendOf|worksFor)*", "false — every A→M path starts with follows")
	// §4.2: concatenation constraint — RLC index answers.
	q("L", "B", "(worksFor.friendOf)*", "true — MR of the L→B path is (worksFor,friendOf)")
	// Outside both fragments: product-automaton search takes over.
	q("A", "M", "follows.worksFor.worksFor", "true — fixed 3-step shape (not indexed)")

	// Index footprints.
	fmt.Println("\nindex statistics:")
	for name, st := range db.Stats() {
		fmt.Printf("  %-8s entries=%-6d bytes=%-8d build=%v\n",
			name, st.Entries, st.Bytes, st.BuildTime)
	}
}
