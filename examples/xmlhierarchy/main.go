// Tree-like data with few non-tree edges — the regime the early
// tree-cover extensions target ("dual-labeling and path-tree are designed
// for tree structures e.g., XML databases, and their application to
// graphs works well only if the number of non-tree edges is very low",
// §3.1).
//
// Generates an XML-document-like hierarchy (a deep element tree) with a
// small number of IDREF cross-links, and compares Dual-Labeling and
// Tree+SSPI — the specialists — against GRAIL and PLL as the number of
// cross-links grows. The specialists' constant-time lookups survive only
// while links stay rare; their index sizes blow up quadratically after.
//
//	go run ./examples/xmlhierarchy
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	reach "repro"
	"repro/internal/gen"
	"repro/internal/traversal"
)

func main() {
	const n = 20000
	fmt.Printf("XML-like hierarchy: %d elements; sweeping IDREF cross-link counts\n\n", n)
	fmt.Printf("%-8s %-14s %-12s %-12s %-12s\n", "links", "index", "build", "size", "query")

	for _, extra := range []int{0, 50, 500, 5000} {
		doc := gen.TreePlus(n, extra, 13)
		rng := rand.New(rand.NewSource(17))
		const queries = 2000
		type pair struct{ s, t reach.V }
		ps := make([]pair, queries)
		want := make([]bool, queries)
		for i := range ps {
			ps[i] = pair{reach.V(rng.Intn(n)), reach.V(rng.Intn(n))}
			want[i] = traversal.BFS(doc, ps[i].s, ps[i].t)
		}
		for _, kind := range []reach.Kind{
			reach.KindDualLabel, reach.KindTreeSSPI, reach.KindGRAIL, reach.KindPLL,
		} {
			ix, err := reach.Build(kind, doc, reach.Options{K: 2, Seed: 19})
			if err != nil {
				log.Fatal(err)
			}
			start := time.Now()
			for i, p := range ps {
				if got := ix.Reach(p.s, p.t); got != want[i] {
					log.Fatalf("%s: wrong answer", ix.Name())
				}
			}
			qt := time.Since(start) / queries
			st := ix.Stats()
			fmt.Printf("%-8d %-14s %-12v %-12s %-12v\n",
				extra, ix.Name(), st.BuildTime, size(st.Bytes), qt)
		}
		fmt.Println()
	}
	fmt.Println("shape check (§3.1): the specialists win on pure trees and degrade as")
	fmt.Println("cross-links accumulate; the general techniques stay flat.")
}

func size(b int) string {
	switch {
	case b < 1<<10:
		return fmt.Sprintf("%dB", b)
	case b < 1<<20:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	}
}
