// Plain reachability on a citation DAG — ancestry checks ("does paper X
// transitively cite paper Y?") across the paper's three plain-index
// frameworks, showing the §3 trade-offs: complete 2-hop answers fastest,
// partial indexes build fastest and scale, everything beats raw BFS.
//
//	go run ./examples/citations
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	reach "repro"
	"repro/internal/gen"
	"repro/internal/traversal"
)

func main() {
	// A citation graph is a DAG with heavy-tailed in-degree (famous
	// papers): exactly the ScaleFree generator's regime.
	const n = 30000
	g := gen.ScaleFree(n, 5, 11)
	fmt.Printf("citation DAG: %d papers, %d citations\n", g.N(), g.M())

	kinds := []struct {
		kind reach.Kind
		opts reach.Options
	}{
		{reach.KindPLL, reach.Options{}},                   // complete 2-hop
		{reach.KindGRAIL, reach.Options{K: 3, Seed: 1}},    // partial tree cover
		{reach.KindBFL, reach.Options{Bits: 256, Seed: 1}}, // approximate TC
		{reach.KindPReaCH, reach.Options{}},                // pruned search
	}

	rng := rand.New(rand.NewSource(3))
	const queries = 5000
	type pair struct{ s, t reach.V }
	ps := make([]pair, queries)
	for i := range ps {
		ps[i] = pair{reach.V(rng.Intn(n)), reach.V(rng.Intn(n))}
	}

	// Baseline: online BFS.
	start := time.Now()
	baseline := make([]bool, queries)
	for i, p := range ps {
		baseline[i] = traversal.BFS(g, p.s, p.t)
	}
	bfsTime := time.Since(start)
	fmt.Printf("\n%-8s build=%-10s query=%v/query (baseline)\n",
		"BFS", "-", bfsTime/time.Duration(queries))

	for _, k := range kinds {
		ix, err := reach.Build(k.kind, g, k.opts)
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		for i, p := range ps {
			if got := ix.Reach(p.s, p.t); got != baseline[i] {
				log.Fatalf("%s: wrong answer for %v", ix.Name(), p)
			}
		}
		qt := time.Since(start)
		st := ix.Stats()
		fmt.Printf("%-8s build=%-10v query=%v/query  size=%dKB  speedup=%.0fx\n",
			ix.Name(), st.BuildTime, qt/time.Duration(queries), st.Bytes/1024,
			float64(bfsTime)/float64(qt))
	}

	// Ancestry scan from the most-cited paper.
	best, bestDeg := reach.V(0), -1
	for v := reach.V(0); int(v) < n; v++ {
		if d := g.InDegree(v); d > bestDeg {
			best, bestDeg = v, d
		}
	}
	ix, _ := reach.Build(reach.KindPLL, g, reach.Options{})
	count := 0
	for v := reach.V(0); int(v) < n; v++ {
		if v != best && ix.Reach(v, best) {
			count++
		}
	}
	fmt.Printf("\nmost-cited paper %d (%d direct citations) is transitively cited by %d papers\n",
		best, bestDeg, count)
}
