// Dynamic graphs: maintaining reachability indexes under edge insertions
// and deletions — the §5 open challenge. Replays one update script
// against TOL (complete, incremental inserts), DAGGER (partial, widening
// intervals), and DBL (partial, insert-only), cross-checking every answer
// against a freshly rebuilt oracle.
//
//	go run ./examples/dynamic
package main

import (
	"errors"
	"fmt"
	"log"
	"math/rand"
	"time"

	reach "repro"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/tc"
)

func main() {
	const n = 1500
	g := gen.RandomDAG(gen.Config{N: n, M: 4 * n, Seed: 21})
	script := gen.UpdateScript(g, 300, true /* keep it a DAG */, 22)
	fmt.Printf("graph: n=%d m=%d; script: %d updates (mixed insert/delete)\n",
		g.N(), g.M(), len(script))

	indexes := []reach.Kind{reach.KindTOL, reach.KindDAGGER, reach.KindDBL}
	for _, k := range indexes {
		ix, err := reach.BuildDynamic(k, g, reach.Options{K: 2, Bits: 256, Seed: 23})
		if err != nil {
			log.Fatal(err)
		}
		run(ix, g, script)
	}
}

func run(ix reach.DynamicIndex, g0 *reach.Graph, script []gen.UpdateOp) {
	cur := graph.Mutate(g0)
	rng := rand.New(rand.NewSource(31))
	var updTime time.Duration
	applied, skippedDeletes, checked := 0, 0, 0
	for _, op := range script {
		var err error
		start := time.Now()
		if op.Insert {
			err = ix.InsertEdge(op.Edge.From, op.Edge.To)
		} else {
			err = ix.DeleteEdge(op.Edge.From, op.Edge.To)
		}
		elapsed := time.Since(start)
		var unsup *core.Unsupported
		if errors.As(err, &unsup) {
			skippedDeletes++
			continue // insert-only index: the edge stays in the graph
		}
		if err != nil {
			log.Fatalf("%s: %v", ix.Name(), err)
		}
		updTime += elapsed
		applied++
		if op.Insert {
			cur.AddEdge(op.Edge.From, op.Edge.To)
		} else {
			cur.RemoveEdge(op.Edge)
		}
		// Periodic correctness audit against a rebuilt closure.
		if applied%50 != 0 {
			continue
		}
		snapshot := cur.MustFreeze()
		oracle := tc.NewClosure(snapshot)
		for q := 0; q < 300; q++ {
			s := reach.V(rng.Intn(snapshot.N()))
			t := reach.V(rng.Intn(snapshot.N()))
			checked++
			if got, want := ix.Reach(s, t), oracle.Reach(s, t); got != want {
				log.Fatalf("%s: divergence at (%d,%d) after %d updates", ix.Name(), s, t, applied)
			}
		}
		cur = graph.Mutate(snapshot)
	}
	fmt.Printf("%-8s applied=%d updates (%v avg), skipped=%d unsupported deletes, %d audited queries ✓\n",
		ix.Name(), applied, updTime/time.Duration(applied), skippedDeletes, checked)
}
