package reach

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/tc"
)

func TestBatchReachMatchesSequential(t *testing.T) {
	g := gen.RandomDAG(gen.Config{N: 300, M: 900, Seed: 1})
	ix, err := Build(KindBFL, g, Options{Bits: 128})
	if err != nil {
		t.Fatal(err)
	}
	oracle := tc.NewClosure(g)
	rng := rand.New(rand.NewSource(2))
	pairs := make([]Pair, 3000)
	for i := range pairs {
		pairs[i] = Pair{V(rng.Intn(g.N())), V(rng.Intn(g.N()))}
	}
	for _, workers := range []int{0, 1, 2, 7, 64} {
		got, err := BatchReach(ix, g, pairs, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != len(pairs) {
			t.Fatalf("workers=%d: %d answers", workers, len(got))
		}
		for i, p := range pairs {
			if got[i] != oracle.Reach(p.S, p.T) {
				t.Fatalf("workers=%d: wrong answer at %d", workers, i)
			}
		}
	}
}

func TestBatchReachLC(t *testing.T) {
	g := gen.Zipf(gen.ErdosRenyi(gen.Config{N: 80, M: 320, Seed: 3}), 4, 0.5, 4)
	ix, err := BuildLCR(LCRP2H, g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	oracle := tc.NewGTC(g)
	rng := rand.New(rand.NewSource(5))
	pairs := make([]LCRPair, 2000)
	for i := range pairs {
		pairs[i] = LCRPair{V(rng.Intn(g.N())), V(rng.Intn(g.N())), uint64(rng.Intn(16))}
	}
	for _, workers := range []int{1, 3, 16} {
		got, err := BatchReachLC(ix, g, pairs, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, p := range pairs {
			want := p.S == p.T || oracle.ReachLC(p.S, p.T, labelSetOf(p.Allowed))
			if got[i] != want {
				t.Fatalf("workers=%d: wrong answer at %d", workers, i)
			}
		}
	}
}

func TestBatchEmpty(t *testing.T) {
	g := Fig1Plain()
	ix, _ := Build(KindPLL, g, Options{})
	if got, err := BatchReach(ix, g, nil, 4); err != nil || len(got) != 0 {
		t.Fatalf("empty batch: got %v, err %v", got, err)
	}
}
