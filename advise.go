package reach

import (
	"context"
	"fmt"
	"time"

	"repro/internal/advise"
	"repro/internal/core"
)

// Advisor re-exports. The advisor profiles a graph and a recorded
// workload, short-lists plain index kinds from the survey's taxonomy,
// shadow-builds and trace-replays each, and picks by measured p99 —
// see internal/advise and DESIGN.md ("Advisor").
type (
	// AdvisorReport is the advisor's full output: graph and workload
	// profiles, the index-free baseline, every measured candidate, and
	// the chosen/best/regret verdict. JSON-shaped for `reachcli advise
	// -json` and /admin/advise.
	AdvisorReport = advise.Report
	// AdvisorCandidate is one short-listed kind with its measurements.
	AdvisorCandidate = advise.Candidate
	// GraphProfile is the structural feature vector of a graph.
	GraphProfile = advise.GraphProfile
	// WorkloadProfile summarizes a recorded trace's query mix.
	WorkloadProfile = advise.WorkloadProfile
	// ReplaySummary is the machine-readable result of replaying a
	// capture against a DB (`reachcli replay -json`).
	ReplaySummary = advise.ReplaySummary
	// RouteSummary is one route's aggregate within a ReplaySummary.
	RouteSummary = advise.RouteSummary
)

// AdviseConfig parameterizes one Advise run.
type AdviseConfig struct {
	// Budget, when > 0, is the index footprint budget in bytes:
	// over-budget candidates are measured but not chosen unless nothing
	// fits.
	Budget int64
	// BuildTimeout time-boxes each candidate build (default 30s); a
	// candidate that cannot build in time is reported infeasible.
	BuildTimeout time.Duration
	// MaxCandidates caps the rule-table shortlist (default 5).
	MaxCandidates int
	// MaxReplay caps the plain records replayed per candidate (0 = all).
	MaxReplay int
	// Candidates overrides the rule-table shortlist with an explicit
	// kind list.
	Candidates []Kind
	// Options passes the per-technique build tunables through to every
	// candidate build.
	Options Options
}

// Advise profiles g and the recorded trace, measures the short-listed
// candidate kinds (time-boxed build + replay of the trace's uncached
// plain records), and reports the pick. All candidate builds share one
// preprocessing memo (Options.Prepared, created if absent).
func Advise(ctx context.Context, g *Graph, recs []WorkloadRecord, cfg AdviseConfig) (*AdvisorReport, error) {
	if g == nil {
		return nil, fmt.Errorf("%w: nil graph", ErrBadOptions)
	}
	opt := cfg.Options
	if opt.Prepared == nil {
		opt.Prepared = Prepare(g)
	}
	var kinds []string
	for _, k := range cfg.Candidates {
		kinds = append(kinds, string(k))
	}
	return advise.Run(ctx, opt.Prepared, recs, advise.Config{
		Build:         buildFuncFor(g, opt),
		Candidates:    kinds,
		MaxCandidates: cfg.MaxCandidates,
		BuildTimeout:  cfg.BuildTimeout,
		Budget:        cfg.Budget,
		MaxReplay:     cfg.MaxReplay,
	})
}

// buildFuncFor closes BuildCtx over the graph and shared options — the
// builder injection internal/advise runs candidate construction through.
func buildFuncFor(g *Graph, opt Options) advise.BuildFunc {
	return func(ctx context.Context, kind string) (core.Index, error) {
		return BuildCtx(ctx, Kind(kind), g, opt)
	}
}

// ReplayWorkload re-runs a recorded trace against db, aggregating
// capture-vs-replay latency, mismatches, and errors per route — the
// struct behind `reachcli replay -json`.
func ReplayWorkload(db *DB, recs []WorkloadRecord) *ReplaySummary {
	return advise.Replay(db, recs)
}
