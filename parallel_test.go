// Tests for the parallel-construction guarantee of Options.Workers: for a
// fixed Seed, the index built at any worker count answers every query
// identically (the internal/par substrate makes each work item a pure
// function of its index, not of goroutine scheduling). Run under -race
// these tests also certify the fan-out/fan-in and level-sweep barriers.
package reach_test

import (
	"testing"

	reach "repro"
	"repro/internal/gen"
	"repro/internal/tc"
)

// parallelKinds are the plain index kinds with a parallelized build phase.
var parallelKinds = []struct {
	kind reach.Kind
	opt  reach.Options
}{
	{reach.KindGRAIL, reach.Options{K: 3, Seed: 11}},
	{reach.KindFerrari, reach.Options{K: 3}},
	{reach.KindIP, reach.Options{K: 8, Seed: 11}},
	{reach.KindOReach, reach.Options{K: 16}},
	{reach.KindBFL, reach.Options{Bits: 256, Seed: 11}},
	{reach.KindDBL, reach.Options{K: 16, Bits: 256, Seed: 11}},
}

// answers evaluates ix on every (s, t) pair of g.
func answers(ix reach.Index, g *reach.Graph) []bool {
	n := g.N()
	out := make([]bool, 0, n*n)
	for s := 0; s < n; s++ {
		for t := 0; t < n; t++ {
			out = append(out, ix.Reach(reach.V(s), reach.V(t)))
		}
	}
	return out
}

func TestParallelBuildDeterminism(t *testing.T) {
	graphs := map[string]*reach.Graph{
		"dag":    gen.RandomDAG(gen.Config{N: 150, M: 600, Seed: 2}),
		"cyclic": gen.ErdosRenyi(gen.Config{N: 150, M: 600, Seed: 3}),
	}
	for gname, g := range graphs {
		for _, tk := range parallelKinds {
			opt := tk.opt
			opt.Workers = 1
			base, err := reach.Build(tk.kind, g, opt)
			if err != nil {
				t.Fatal(err)
			}
			want := answers(base, g)
			for _, workers := range []int{0, 2, 8} {
				opt.Workers = workers
				ix, err := reach.Build(tk.kind, g, opt)
				if err != nil {
					t.Fatal(err)
				}
				got := answers(ix, g)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("%s on %s: workers=%d diverges from serial at pair %d",
							tk.kind, gname, workers, i)
					}
				}
			}
		}
	}
}

// TestParallelClosureDeterminism pins the parallel exact-TC construction
// (tc.NewClosureN) to the serial oracle bit for bit.
func TestParallelClosureDeterminism(t *testing.T) {
	for _, g := range []*reach.Graph{
		gen.RandomDAG(gen.Config{N: 300, M: 1500, Seed: 5}),
		gen.ErdosRenyi(gen.Config{N: 300, M: 1500, Seed: 6}),
	} {
		serial := tc.NewClosure(g)
		for _, workers := range []int{0, 2, 8} {
			par := tc.NewClosureN(g, workers)
			if par.Pairs() != serial.Pairs() {
				t.Fatalf("workers=%d: %d reachable pairs, serial has %d",
					workers, par.Pairs(), serial.Pairs())
			}
			for s := 0; s < g.N(); s += 7 {
				for tgt := 0; tgt < g.N(); tgt += 3 {
					if par.Reach(reach.V(s), reach.V(tgt)) != serial.Reach(reach.V(s), reach.V(tgt)) {
						t.Fatalf("workers=%d: Reach(%d,%d) diverges", workers, s, tgt)
					}
				}
			}
		}
	}
}

// TestBatchReachWorkStealing checks the batch API against serial execution
// at several worker counts (the work-stealing loop must neither skip nor
// duplicate slots).
func TestBatchReachWorkStealing(t *testing.T) {
	g := gen.RandomDAG(gen.Config{N: 2000, M: 8000, Seed: 8})
	ix, err := reach.Build(reach.KindBFL, g, reach.Options{Bits: 256})
	if err != nil {
		t.Fatal(err)
	}
	qs := gen.Queries(g, 997, 12) // odd count: exercises the ragged final grain
	pairs := make([]reach.Pair, len(qs))
	for i, q := range qs {
		pairs[i] = reach.Pair{S: q.S, T: q.T}
	}
	want, err := reach.BatchReach(ix, g, pairs, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range qs {
		if want[i] != q.Want {
			t.Fatalf("serial batch wrong at %d", i)
		}
	}
	for _, workers := range []int{-1, 0, 2, 3, 8} {
		got, err := reach.BatchReach(ix, g, pairs, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: slot %d diverges", workers, i)
			}
		}
	}
}

// TestDeprecatedParallelStillWorks pins the compatibility contract of the
// deprecated Options.Parallel bool: setting it builds successfully and
// answers identically to Workers-based builds.
func TestDeprecatedParallelStillWorks(t *testing.T) {
	g := gen.Zipf(gen.ErdosRenyi(gen.Config{N: 100, M: 400, Seed: 4}), 5, 0.6, 5)
	old, err := reach.BuildLCR(reach.LCRLandmark, g, reach.Options{K: 8, Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	cur, err := reach.BuildLCR(reach.LCRLandmark, g, reach.Options{K: 8, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if old.Stats().Entries != cur.Stats().Entries {
		t.Fatalf("deprecated Parallel build diverged: %d vs %d entries",
			old.Stats().Entries, cur.Stats().Entries)
	}
}
