package reach

// Index snapshots: persist a built index and warm-start from it instead
// of rebuilding on every process start. Rebuild cost dominates at scale
// (the FERRARI line of work budgets index size precisely because of it),
// so the serving layer (cmd/reachserve) saves its plain index after a
// fresh build and loads it on the next start — the load is a linear
// deserialization, visible in build spans as "index/load" instead of
// "index/build".
//
// Snapshots are positional facts about one specific graph. Pairing a
// snapshot with the graph it was built from is the caller's
// responsibility, as with any external index file in a DBMS; a
// vertex-count mismatch is detected and reported, deeper mismatches are
// not.

import (
	"fmt"
	"io"

	"repro/internal/bfl"
	"repro/internal/core"
	"repro/internal/graph"
)

// SaveIndex writes a portable snapshot of ix. Today the snapshottable
// kind is KindBFL — the DB's default plain index — whether queried
// directly or through the SCC-condensation adapter (the adapter is
// unwrapped; only the DAG-level labels are persisted, the condensation
// is recomputed at load). Other kinds report ErrBadOptions.
func SaveIndex(w io.Writer, ix Index) error {
	if ix == nil {
		return fmt.Errorf("%w: nil index", ErrBadOptions)
	}
	inner := ix
	for {
		iw, ok := inner.(interface{ Inner() Index })
		if !ok {
			break
		}
		inner = iw.Inner()
	}
	b, ok := inner.(*bfl.Index)
	if !ok {
		return fmt.Errorf("%w: index %q has no snapshot format (only %q snapshots today)", ErrBadOptions, ix.Name(), KindBFL)
	}
	_, err := b.WriteTo(w)
	return err
}

// LoadIndex reads a snapshot written by SaveIndex and re-binds it to g —
// the same graph the saved index was built over. The SCC condensation is
// recomputed (or drawn from Options.Prepared, exactly like a build) and
// the deserialization is recorded as an "index/load" span, so a
// warm-started timeline never shows an "index/build" phase. Corrupt,
// truncated, or mismatched input yields an error, never a panic.
func LoadIndex(r io.Reader, g *Graph, opt Options) (ix Index, err error) {
	if err := checkBuild(nil, g, opt); err != nil {
		return nil, err
	}
	if r == nil {
		return nil, fmt.Errorf("%w: nil snapshot reader", ErrBadOptions)
	}
	defer core.Recover(&err)
	return core.ForGeneralLoaded(g, opt.Spans, opt.Prepared, func(dag *graph.Digraph) (Index, error) {
		return bfl.Read(r, dag)
	})
}
