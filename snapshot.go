package reach

// Index snapshots: persist a built index and warm-start from it instead
// of rebuilding on every process start. Rebuild cost dominates at scale
// (the FERRARI line of work budgets index size precisely because of it),
// so the serving layer (cmd/reachserve) saves its plain index after a
// fresh build and loads it on the next start — the load is a linear
// deserialization, visible in build spans as "index/load" instead of
// "index/build".
//
// Two persistence layouts exist per snapshottable kind:
//
//   - SaveIndex writes the streaming codec: compact, decoded
//     field-by-field with full validation at load.
//   - SaveIndexMapped writes the mapped layout: fixed-width aligned
//     array sections plus a whole-file CRC-32C, so LoadIndexMapped can
//     mmap the file and hand the index zero-copy views of the label
//     arrays — cold start is page mapping plus a checksum pass, not a
//     decode pass. On platforms without mmap (or when mapping fails)
//     LoadIndexMapped transparently falls back to reading the file
//     through the streaming decoder; both layouts are readable by
//     LoadIndex.
//
// Snapshots are positional facts about one specific graph. Pairing a
// snapshot with the graph it was built from is the caller's
// responsibility, as with any external index file in a DBMS; a
// vertex-count mismatch is detected and reported, deeper mismatches are
// not.

import (
	"fmt"
	"io"

	"repro/internal/bfl"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/persist"
	"repro/internal/pll"
)

// snapshotTarget unwraps ix to the concrete index a snapshot codec
// exists for: *bfl.Index (through any adapter chain — only the DAG-level
// labels are persisted, the condensation is recomputed at load) or a
// directly-built *pll.Index (PLL/DL). A condensation-lifted PLL-family
// index (TFL, HL over a cyclic graph) is refused: its labels are over
// SCC-component ids, and the pll snapshot format re-binds labels to
// original vertex ids, which would silently corrupt answers.
func snapshotTarget(ix Index) (any, error) {
	if ix == nil {
		return nil, fmt.Errorf("%w: nil index", ErrBadOptions)
	}
	condensed := core.IsCondensed(ix)
	inner := ix
	for {
		iw, ok := inner.(interface{ Inner() Index })
		if !ok {
			break
		}
		inner = iw.Inner()
	}
	switch t := inner.(type) {
	case *bfl.Index:
		return t, nil
	case *pll.Index:
		if condensed {
			return nil, fmt.Errorf("%w: index %q is lifted through SCC condensation; its labels are over component ids and cannot be re-bound to the original graph (snapshot the directly-built %q/%q kinds instead)",
				ErrBadOptions, ix.Name(), KindPLL, KindDL)
		}
		return t, nil
	}
	return nil, fmt.Errorf("%w: index %q has no snapshot format (snapshottable kinds: %q, %q, %q)",
		ErrBadOptions, ix.Name(), KindBFL, KindPLL, KindDL)
}

// SaveIndex writes a portable snapshot of ix in the streaming codec.
// Snapshottable kinds are KindBFL — whether queried directly or through
// the SCC-condensation adapter (the adapter is unwrapped; only the
// DAG-level labels are persisted, the condensation is recomputed at
// load) — and the directly-built 2-hop kinds KindPLL and KindDL. Other
// kinds report ErrBadOptions.
func SaveIndex(w io.Writer, ix Index) error {
	t, err := snapshotTarget(ix)
	if err != nil {
		return err
	}
	switch t := t.(type) {
	case *bfl.Index:
		_, err = t.WriteTo(w)
	case *pll.Index:
		_, err = t.WriteTo(w)
	}
	return err
}

// SaveIndexMapped writes a snapshot of ix in the mapped layout —
// aligned array sections plus a whole-file checksum — for zero-copy
// loading via LoadIndexMapped. The writer must be positioned at the
// start of the file (section alignment is computed from the file
// origin). The same kinds as SaveIndex are supported, and LoadIndex can
// also read the mapped layout through the streaming decoder.
func SaveIndexMapped(w io.Writer, ix Index) error {
	t, err := snapshotTarget(ix)
	if err != nil {
		return err
	}
	switch t := t.(type) {
	case *bfl.Index:
		_, err = t.WriteMapped(w)
	case *pll.Index:
		_, err = t.WriteMapped(w)
	}
	return err
}

// LoadIndex reads a snapshot written by SaveIndex or SaveIndexMapped and
// re-binds it to g — the same graph the saved index was built over. The
// snapshot kind is sniffed from the stream. For BFL the SCC condensation
// is recomputed (or drawn from Options.Prepared, exactly like a build);
// the deserialization is recorded as an "index/load" span, so a
// warm-started timeline never shows an "index/build" phase. Corrupt,
// truncated, or mismatched input yields an error, never a panic.
func LoadIndex(r io.Reader, g *Graph, opt Options) (ix Index, err error) {
	if err := checkBuild(nil, g, opt); err != nil {
		return nil, err
	}
	if r == nil {
		return nil, fmt.Errorf("%w: nil snapshot reader", ErrBadOptions)
	}
	defer core.Recover(&err)
	pr, format, err := persist.NewReaderAny(r)
	if err != nil {
		return nil, err
	}
	switch format {
	case "bfl":
		return core.ForGeneralLoaded(g, opt.Spans, opt.Prepared, func(dag *graph.Digraph) (Index, error) {
			return bfl.ReadSections(pr, dag)
		})
	case "pll":
		end := opt.Spans.Start("index/load")
		defer end()
		px, err := pll.ReadSections(pr)
		if err != nil {
			return nil, err
		}
		if px.N() != g.N() {
			return nil, fmt.Errorf("pll: snapshot has %d vertices, graph has %d (snapshot built over a different graph?)", px.N(), g.N())
		}
		return px, nil
	}
	return nil, fmt.Errorf("%w: unknown snapshot format %q", ErrBadOptions, format)
}

// LoadIndexMapped opens the mapped-layout snapshot file at path and
// binds it to g as a zero-copy index: the file is mmap'd (read-only,
// shared) and the index's label arrays are views into the mapping, so
// cold start faults in pages on demand instead of decoding the file. On
// platforms without mmap support the file is read into memory instead —
// same views, one up-front copy. The file's whole-body CRC-32C is
// verified before any view is trusted; corruption, truncation, or a
// streaming-layout file yields an error, never a panic.
//
// The returned index pins the mapping for its lifetime; the mapping is
// released when the index is garbage collected.
func LoadIndexMapped(path string, g *Graph, opt Options) (ix Index, err error) {
	if err := checkBuild(nil, g, opt); err != nil {
		return nil, err
	}
	defer core.Recover(&err)
	m, err := persist.OpenMapped(path)
	if err != nil {
		return nil, err
	}
	// On any failure past this point the mapping has no owner yet.
	defer func() {
		if err != nil {
			m.Close()
		}
	}()
	switch m.Format() {
	case "bfl":
		return core.ForGeneralLoaded(g, opt.Spans, opt.Prepared, func(dag *graph.Digraph) (Index, error) {
			return bfl.FromMapped(m, dag)
		})
	case "pll":
		end := opt.Spans.Start("index/load")
		defer end()
		px, err := pll.FromMapped(m)
		if err != nil {
			return nil, err
		}
		if px.N() != g.N() {
			return nil, fmt.Errorf("pll: snapshot has %d vertices, graph has %d (snapshot built over a different graph?)", px.N(), g.N())
		}
		return px, nil
	}
	return nil, fmt.Errorf("%w: unknown snapshot format %q", ErrBadOptions, m.Format())
}

// IndexSizes reports ix's resident footprint split by section — CSR
// offset tables, label payloads, auxiliary structures (ranks, DFS
// intervals, condensation maps). ok is false for index kinds that do not
// break their footprint down; Stats().Bytes still reports their total.
func IndexSizes(ix Index) (offsets, labels, aux int, ok bool) {
	b, ok := core.SizesOf(ix)
	return b.Offsets, b.Labels, b.Aux, ok
}
