package reach

import (
	"context"

	"repro/internal/core"
	"repro/internal/labelset"
	"repro/internal/par"
	"repro/internal/scratch"
	"repro/internal/traversal"
)

// labelSetOf adapts a raw 64-bit mask to the internal label-set type.
func labelSetOf(mask uint64) labelset.Set { return labelset.Set(mask) }

// Pair is one (source, target) query of a batch.
type Pair struct {
	S, T V
}

// batchObserver is implemented by instrumented indexes (core.Instrumented)
// to count batch submissions; per-query metrics record through Reach.
type batchObserver interface {
	ObserveBatch(n int)
}

// batchGrain is the number of queries a batch worker claims per steal.
// Small enough that one expensive run of queries (deep guided-DFS
// fallbacks cluster in adversarial orderings) cannot strand a worker with
// a long private chunk, large enough to amortize the atomic claim.
const batchGrain = 16

// BatchReach evaluates many plain reachability queries concurrently over
// a shared index. Indexes in this library are safe for concurrent readers
// once built (they are immutable after construction; dynamic indexes must
// not be updated while a batch runs). g must be the graph ix was built
// over — it bounds the vertex validation; every pair is checked before
// any query runs, so an out-of-range pair yields ErrVertexRange with no
// partial work. workers <= 0 selects GOMAXPROCS.
// Instrumented indexes (see Instrument) additionally count the batch and
// its size; individual queries record through the wrapper as usual — the
// per-query counters are atomic, so concurrent workers stay race-free.
//
// Workers claim grain-sized runs of the batch from a shared atomic
// counter rather than pre-assigned static chunks, so a cluster of
// expensive queries (negative queries that exhaust a guided fallback)
// cannot leave the other workers idle while one drains its chunk.
//
// Throughput-oriented workloads (the §5 "many negative queries" regime)
// are embarrassingly parallel; this helper is the §5 parallel-computation
// direction applied to the query side. A panic inside the index on any
// worker stops the batch and surfaces as ErrIndexPanic.
//
// A nil index selects the index-free bit-parallel path: the batch is cut
// into blocks of 64 pairs and each block is answered by ONE multi-source
// BFS sweep (traversal.MultiSourceReach) in which every pair owns one bit
// of a per-vertex frontier word — ~len(pairs)/64 graph sweeps instead of
// len(pairs) separate searches. This is how to evaluate a batch when no
// index has been built (ad-hoc analytics, or validating a build), and it
// is exact on general graphs.
func BatchReach(ix Index, g *Graph, pairs []Pair, workers int) (out []bool, err error) {
	return BatchReachCtx(nil, ix, g, pairs, workers)
}

// BatchReachCtx is BatchReach under a context: workers poll ctx between
// work claims (one grain of queries, or one 64-pair block on the nil-index
// path) and the batch returns ctx.Err() with no partial results when the
// context is canceled or past its deadline. A nil ctx never cancels.
func BatchReachCtx(ctx context.Context, ix Index, g *Graph, pairs []Pair, workers int) (out []bool, err error) {
	n := g.N()
	for _, p := range pairs {
		if err := core.CheckPair(n, p.S, p.T); err != nil {
			return nil, err
		}
	}
	var done <-chan struct{}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		done = ctx.Done()
	}
	// stop is the workers' cooperative poll: claims already running finish,
	// no further ones start, and the batch reports ctx.Err().
	stop := func() bool {
		if done == nil {
			return false
		}
		select {
		case <-done:
			return true
		default:
			return false
		}
	}
	if bo, ok := ix.(batchObserver); ok {
		bo.ObserveBatch(len(pairs))
	}
	if workers < 0 {
		workers = 0 // documented contract: <= 0 selects GOMAXPROCS
	}
	defer core.Recover(&err)
	out = make([]bool, len(pairs))
	if ix == nil {
		blocks := (len(pairs) + traversal.WordSources - 1) / traversal.WordSources
		par.Do(workers, blocks, func(b int) {
			if stop() {
				return
			}
			lo := b * traversal.WordSources
			hi := lo + traversal.WordSources
			if hi > len(pairs) {
				hi = len(pairs)
			}
			sc := scratch.Get(0)
			defer scratch.Put(sc)
			words := sc.Words(n)
			srcs := sc.Aux[:0]
			for i := lo; i < hi; i++ {
				srcs = append(srcs, pairs[i].S)
			}
			sc.Aux = srcs
			traversal.MultiSourceReach(g, srcs, words)
			for i := lo; i < hi; i++ {
				out[i] = words[pairs[i].T]&(1<<uint(i-lo)) != 0
			}
		})
	} else {
		par.DoGrain(workers, len(pairs), batchGrain, func(_, lo, hi int) {
			if stop() {
				return
			}
			for i := lo; i < hi; i++ {
				out[i] = ix.Reach(pairs[i].S, pairs[i].T)
			}
		})
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// LCRPair is one alternation-constrained query of a batch.
type LCRPair struct {
	S, T    V
	Allowed uint64
}

// BatchReachLC is BatchReach for alternation-constrained queries.
func BatchReachLC(ix LCRIndex, g *Graph, pairs []LCRPair, workers int) (out []bool, err error) {
	n := g.N()
	for _, p := range pairs {
		if err := core.CheckPair(n, p.S, p.T); err != nil {
			return nil, err
		}
	}
	if workers < 0 {
		workers = 0
	}
	defer core.Recover(&err)
	out = make([]bool, len(pairs))
	par.DoGrain(workers, len(pairs), batchGrain, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			p := pairs[i]
			out[i] = p.S == p.T || ix.ReachLC(p.S, p.T, labelSetOf(p.Allowed))
		}
	})
	return out, nil
}
