package reach

import (
	"runtime"
	"sync"

	"repro/internal/labelset"
)

// labelSetOf adapts a raw 64-bit mask to the internal label-set type.
func labelSetOf(mask uint64) labelset.Set { return labelset.Set(mask) }

// Pair is one (source, target) query of a batch.
type Pair struct {
	S, T V
}

// batchObserver is implemented by instrumented indexes (core.Instrumented)
// to count batch submissions; per-query metrics record through Reach.
type batchObserver interface {
	ObserveBatch(n int)
}

// BatchReach evaluates many plain reachability queries concurrently over
// a shared index. Indexes in this library are safe for concurrent readers
// once built (they are immutable after construction; dynamic indexes must
// not be updated while a batch runs). workers <= 0 selects GOMAXPROCS.
// Instrumented indexes (see Instrument) additionally count the batch and
// its size; individual queries record through the wrapper as usual — the
// per-query counters are atomic, so concurrent workers stay race-free.
//
// Throughput-oriented workloads (the §5 "many negative queries" regime)
// are embarrassingly parallel; this helper is the §5 parallel-computation
// direction applied to the query side.
func BatchReach(ix Index, pairs []Pair, workers int) []bool {
	if bo, ok := ix.(batchObserver); ok {
		bo.ObserveBatch(len(pairs))
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pairs) {
		workers = len(pairs)
	}
	out := make([]bool, len(pairs))
	if workers <= 1 {
		for i, p := range pairs {
			out[i] = ix.Reach(p.S, p.T)
		}
		return out
	}
	var wg sync.WaitGroup
	chunk := (len(pairs) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(pairs) {
			hi = len(pairs)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				out[i] = ix.Reach(pairs[i].S, pairs[i].T)
			}
		}(lo, hi)
	}
	wg.Wait()
	return out
}

// LCRPair is one alternation-constrained query of a batch.
type LCRPair struct {
	S, T    V
	Allowed uint64
}

// BatchReachLC is BatchReach for alternation-constrained queries.
func BatchReachLC(ix LCRIndex, pairs []LCRPair, workers int) []bool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pairs) {
		workers = len(pairs)
	}
	out := make([]bool, len(pairs))
	run := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			p := pairs[i]
			out[i] = p.S == p.T || ix.ReachLC(p.S, p.T, labelSetOf(p.Allowed))
		}
	}
	if workers <= 1 {
		run(0, len(pairs))
		return out
	}
	var wg sync.WaitGroup
	chunk := (len(pairs) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(pairs) {
			hi = len(pairs)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			run(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	return out
}
