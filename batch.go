package reach

import (
	"repro/internal/core"
	"repro/internal/labelset"
	"repro/internal/par"
)

// labelSetOf adapts a raw 64-bit mask to the internal label-set type.
func labelSetOf(mask uint64) labelset.Set { return labelset.Set(mask) }

// Pair is one (source, target) query of a batch.
type Pair struct {
	S, T V
}

// batchObserver is implemented by instrumented indexes (core.Instrumented)
// to count batch submissions; per-query metrics record through Reach.
type batchObserver interface {
	ObserveBatch(n int)
}

// batchGrain is the number of queries a batch worker claims per steal.
// Small enough that one expensive run of queries (deep guided-DFS
// fallbacks cluster in adversarial orderings) cannot strand a worker with
// a long private chunk, large enough to amortize the atomic claim.
const batchGrain = 16

// BatchReach evaluates many plain reachability queries concurrently over
// a shared index. Indexes in this library are safe for concurrent readers
// once built (they are immutable after construction; dynamic indexes must
// not be updated while a batch runs). g must be the graph ix was built
// over — it bounds the vertex validation; every pair is checked before
// any query runs, so an out-of-range pair yields ErrVertexRange with no
// partial work. workers <= 0 selects GOMAXPROCS.
// Instrumented indexes (see Instrument) additionally count the batch and
// its size; individual queries record through the wrapper as usual — the
// per-query counters are atomic, so concurrent workers stay race-free.
//
// Workers claim grain-sized runs of the batch from a shared atomic
// counter rather than pre-assigned static chunks, so a cluster of
// expensive queries (negative queries that exhaust a guided fallback)
// cannot leave the other workers idle while one drains its chunk.
//
// Throughput-oriented workloads (the §5 "many negative queries" regime)
// are embarrassingly parallel; this helper is the §5 parallel-computation
// direction applied to the query side. A panic inside the index on any
// worker stops the batch and surfaces as ErrIndexPanic.
func BatchReach(ix Index, g *Graph, pairs []Pair, workers int) (out []bool, err error) {
	n := g.N()
	for _, p := range pairs {
		if err := core.CheckPair(n, p.S, p.T); err != nil {
			return nil, err
		}
	}
	if bo, ok := ix.(batchObserver); ok {
		bo.ObserveBatch(len(pairs))
	}
	if workers < 0 {
		workers = 0 // documented contract: <= 0 selects GOMAXPROCS
	}
	defer core.Recover(&err)
	out = make([]bool, len(pairs))
	par.DoGrain(workers, len(pairs), batchGrain, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = ix.Reach(pairs[i].S, pairs[i].T)
		}
	})
	return out, nil
}

// LCRPair is one alternation-constrained query of a batch.
type LCRPair struct {
	S, T    V
	Allowed uint64
}

// BatchReachLC is BatchReach for alternation-constrained queries.
func BatchReachLC(ix LCRIndex, g *Graph, pairs []LCRPair, workers int) (out []bool, err error) {
	n := g.N()
	for _, p := range pairs {
		if err := core.CheckPair(n, p.S, p.T); err != nil {
			return nil, err
		}
	}
	if workers < 0 {
		workers = 0
	}
	defer core.Recover(&err)
	out = make([]bool, len(pairs))
	par.DoGrain(workers, len(pairs), batchGrain, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			p := pairs[i]
			out[i] = p.S == p.T || ix.ReachLC(p.S, p.T, labelSetOf(p.Allowed))
		}
	})
	return out, nil
}
