package reach

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/gen"
)

func TestAutoTuneConfigValidation(t *testing.T) {
	g := gen.RandomDAG(gen.Config{N: 50, M: 100, Seed: 1})
	bad := []DBConfig{
		{AutoTune: &AutoTuneConfig{}, Mutation: &MutationConfig{}},
		{AutoTune: &AutoTuneConfig{MinImprovement: -1}},
		{AutoTune: &AutoTuneConfig{MinSamples: -1}},
		{AutoTune: &AutoTuneConfig{CheckInterval: -time.Second}},
		{AutoTune: &AutoTuneConfig{Candidates: []Kind{"no-such-kind"}}},
	}
	for i, cfg := range bad {
		if _, err := NewDB(g, cfg); !errors.Is(err, ErrBadOptions) {
			t.Errorf("config %d: err = %v, want ErrBadOptions", i, err)
		}
	}
	// PlainIndex exclusion.
	ix, err := Build(KindBFL, g, Options{})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if _, err := NewDB(g, DBConfig{PlainIndex: ix, AutoTune: &AutoTuneConfig{}}); !errors.Is(err, ErrBadOptions) {
		t.Errorf("PlainIndex+AutoTune: err = %v, want ErrBadOptions", err)
	}
	// Status reads false when the tuner is off.
	db, err := NewDB(g, DBConfig{})
	if err != nil {
		t.Fatalf("NewDB: %v", err)
	}
	defer db.Close()
	if _, ok := db.AdvisorStatus(); ok {
		t.Error("AdvisorStatus ok on a DB without AutoTune")
	}
}

// TestAutoTuneHotSwap is the acceptance e2e: a DB starts on a
// deliberately slow plain index (GRIPP: interval-guided traversal per
// probe), live traffic flows, and the auto-tuner shadow-builds the
// advisor's pick and hot-swaps it in — with zero failed and zero wrong
// requests across the swap.
func TestAutoTuneHotSwap(t *testing.T) {
	g := gen.RandomDAG(gen.Config{N: 2000, M: 8000, Seed: 42})
	qs := gen.Queries(g, 512, 43)
	db, err := NewDB(g, DBConfig{
		Plain:   KindGRIPP,
		Metrics: true,
		AutoTune: &AutoTuneConfig{
			CheckInterval:  20 * time.Millisecond,
			MinImprovement: 0.01,
			MinSamples:     64,
			SampleWindow:   256,
			Candidates:     []Kind{KindPLL},
		},
	})
	if err != nil {
		t.Fatalf("NewDB: %v", err)
	}
	defer db.Close()

	status, ok := db.AdvisorStatus()
	if !ok || status.CurrentKind != string(KindGRIPP) || status.InitialKind != string(KindGRIPP) {
		t.Fatalf("initial advisor status = %+v ok=%v", status, ok)
	}

	// Live traffic: hammer the DB from several goroutines until told to
	// stop, verifying every answer against the BFS ground truth.
	var (
		stop     atomic.Bool
		failed   atomic.Int64
		wrong    atomic.Int64
		answered atomic.Int64
		wg       sync.WaitGroup
	)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(off int) {
			defer wg.Done()
			for i := off; !stop.Load(); i++ {
				q := qs[i%len(qs)]
				got, err := db.Reach(q.S, q.T)
				switch {
				case err != nil:
					failed.Add(1)
				case got != q.Want:
					wrong.Add(1)
				default:
					answered.Add(1)
				}
			}
		}(w * 131)
	}

	// Wait for the swap (PLL beats GRIPP probes by far more than 1%).
	deadline := time.Now().Add(30 * time.Second)
	for {
		status, _ = db.AdvisorStatus()
		if status.Metrics.Swaps >= 1 {
			break
		}
		if time.Now().After(deadline) {
			stop.Store(true)
			wg.Wait()
			t.Fatalf("no swap within deadline; status %+v", status)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Keep traffic flowing across and past the swap, then drain.
	time.Sleep(50 * time.Millisecond)
	stop.Store(true)
	wg.Wait()

	if failed.Load() != 0 || wrong.Load() != 0 {
		t.Fatalf("across hot swap: %d failed, %d wrong (answered %d)", failed.Load(), wrong.Load(), answered.Load())
	}
	if answered.Load() == 0 {
		t.Fatal("no traffic answered")
	}
	if status.CurrentKind != string(KindPLL) || status.InitialKind != string(KindGRIPP) {
		t.Fatalf("post-swap kinds = %q from %q, want pll from gripp", status.CurrentKind, status.InitialKind)
	}
	if status.Report == nil || status.Report.Chosen != string(KindPLL) {
		t.Fatalf("post-swap report = %+v", status.Report)
	}

	// The swapped-in index keeps serving after Close stops the loop.
	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	for _, q := range qs[:64] {
		got, err := db.Reach(q.S, q.T)
		if err != nil || got != q.Want {
			t.Fatalf("post-close query (%d,%d): got %v err %v", q.S, q.T, got, err)
		}
	}
}

// TestAutoTuneSticksWithWinner: when the serving index is already the
// best candidate, evaluations run but never swap.
func TestAutoTuneNoSwapWhenBest(t *testing.T) {
	g := gen.RandomDAG(gen.Config{N: 800, M: 3200, Seed: 9})
	db, err := NewDB(g, DBConfig{
		Plain: KindPLL,
		AutoTune: &AutoTuneConfig{
			CheckInterval: 15 * time.Millisecond,
			MinSamples:    32,
			Candidates:    []Kind{KindPLL},
		},
	})
	if err != nil {
		t.Fatalf("NewDB: %v", err)
	}
	defer db.Close()
	qs := gen.Queries(g, 128, 10)
	for _, q := range qs {
		if _, err := db.Reach(q.S, q.T); err != nil {
			t.Fatalf("Reach: %v", err)
		}
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		status, _ := db.AdvisorStatus()
		if status.Metrics.Evaluations >= 1 {
			if status.Metrics.Swaps != 0 {
				t.Fatalf("swapped to the kind already serving: %+v", status)
			}
			if status.CurrentKind != string(KindPLL) {
				t.Fatalf("serving kind changed: %+v", status)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("no evaluation within deadline; status %+v", status)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
