package reach

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"context"

	"repro/internal/advise"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/workload"
)

// AutoTuneConfig enables the workload-adaptive auto-tuner
// (DBConfig.AutoTune): the DB samples its own plain-query traffic into
// an in-memory ring, and a background loop periodically runs the index
// advisor over the sample — shortlist, shadow-build, trace-replay — and
// hot-swaps the serving plain index when the pick's measured p99 beats
// the current index by the margin. The swap is a single atomic pointer
// publish; in-flight queries pin the index they started on, so no
// request ever fails because of a swap.
type AutoTuneConfig struct {
	// CheckInterval is how often the background loop evaluates. Default
	// 30s.
	CheckInterval time.Duration
	// MinImprovement is the fractional p99 improvement the pick must
	// show over the serving index to be swapped in (0.10 = 10% faster).
	// Default 0.10.
	MinImprovement float64
	// MinSamples is the least plain-query samples the ring must hold
	// before an evaluation runs. Default 128.
	MinSamples int
	// SampleWindow is the ring's capacity: the most recent samples kept.
	// Default 4096.
	SampleWindow int
	// Budget, when > 0, caps candidate footprints in bytes (over-budget
	// candidates are measured but not chosen unless nothing fits).
	Budget int64
	// BuildTimeout time-boxes each candidate's shadow build. Default 30s.
	BuildTimeout time.Duration
	// MaxCandidates caps the rule-table shortlist. Default 5.
	MaxCandidates int
	// Candidates overrides the rule-table shortlist with an explicit
	// kind list.
	Candidates []Kind
}

// checkAutoTuneConfig validates DBConfig.AutoTune against the rest of
// the configuration.
func checkAutoTuneConfig(cfg DBConfig) error {
	at := cfg.AutoTune
	if at == nil {
		return nil
	}
	switch {
	case cfg.Mutation != nil:
		return fmt.Errorf("%w: AutoTune is mutually exclusive with Mutation (the reindexer owns that swap path)", ErrBadOptions)
	case cfg.PlainIndex != nil:
		return fmt.Errorf("%w: AutoTune is mutually exclusive with PlainIndex (no single kind to retune)", ErrBadOptions)
	case at.MinImprovement < 0:
		return fmt.Errorf("%w: AutoTune.MinImprovement must be >= 0, got %v", ErrBadOptions, at.MinImprovement)
	case at.MinSamples < 0 || at.SampleWindow < 0 || at.Budget < 0:
		return fmt.Errorf("%w: negative AutoTune sizes", ErrBadOptions)
	case at.CheckInterval < 0 || at.BuildTimeout < 0:
		return fmt.Errorf("%w: negative AutoTune intervals", ErrBadOptions)
	}
	for _, k := range at.Candidates {
		if !validKind(k) {
			return fmt.Errorf("%w: unknown AutoTune candidate kind %q", ErrBadOptions, k)
		}
	}
	return nil
}

func validKind(k Kind) bool {
	for _, known := range Kinds() {
		if k == known {
			return true
		}
	}
	return false
}

// autoTuner is the background auto-tuning engine. It reuses the mutate
// reindexer's containment pattern: the evaluation goroutine recovers
// panics (core.Recover), failures only count a metric and wait for the
// next tick, and the publish is one atomic store under no lock.
type autoTuner struct {
	db   *DB
	cfg  AutoTuneConfig
	opt  Options
	m    *obs.AdvisorMetrics
	reps int

	cur  atomic.Pointer[Index]  // the serving plain index
	kind atomic.Pointer[string] // its kind name

	mu   sync.Mutex
	ring []workload.Record // most recent plain uncached query samples
	next int               // ring write cursor
	n    int               // records currently held (≤ SampleWindow)

	report atomic.Pointer[AdvisorReport] // last completed evaluation

	cancel  context.CancelFunc
	runCtx  context.Context
	done    chan struct{}
	closing sync.Once

	// testHookSwapped observes a published swap (kind name) in tests.
	testHookSwapped func(kind string)
	// testHookEvaluated observes every completed evaluation in tests.
	testHookEvaluated func(err error)
}

// initAutoTune wires the auto-tuner into a freshly built DB: defaults,
// metrics, the initial published index (the instrumented Plain), and
// the background loop.
func (db *DB) initAutoTune(cfg DBConfig) {
	at := &autoTuner{db: db, cfg: *cfg.AutoTune, m: &obs.AdvisorMetrics{}, reps: 8}
	if at.cfg.CheckInterval <= 0 {
		at.cfg.CheckInterval = 30 * time.Second
	}
	if at.cfg.MinImprovement == 0 {
		at.cfg.MinImprovement = 0.10
	}
	if at.cfg.MinSamples <= 0 {
		at.cfg.MinSamples = 128
	}
	if at.cfg.SampleWindow <= 0 {
		at.cfg.SampleWindow = 4096
	}
	if at.cfg.SampleWindow < at.cfg.MinSamples {
		at.cfg.SampleWindow = at.cfg.MinSamples
	}
	if at.cfg.BuildTimeout <= 0 {
		at.cfg.BuildTimeout = 30 * time.Second
	}
	// Shadow builds share the DB's preprocessing memo but not its span
	// sink: the advisor's background builds must not splice phantom
	// phases into the DB's build timeline.
	at.opt = cfg.Options
	at.opt.Prepared = db.prep
	at.opt.Spans = nil
	ix := db.plain
	at.cur.Store(&ix)
	k := string(db.plainKind)
	at.kind.Store(&k)
	at.m.SetKinds(k, k)
	if db.metrics != nil {
		db.metrics.SetAdvisor(at.m)
	}
	at.runCtx, at.cancel = context.WithCancel(context.Background())
	at.done = make(chan struct{})
	db.aut = at
	go at.run()
}

// current returns the serving plain index.
func (at *autoTuner) current() Index { return *at.cur.Load() }

// currentKind returns the serving plain index's kind name.
func (at *autoTuner) currentKind() string { return *at.kind.Load() }

// observe feeds one plain uncached query sample into the ring. Called
// from the query path via db.record: one short mutex hold, no
// allocation after the ring warms up.
func (at *autoTuner) observe(rec workload.Record) {
	at.mu.Lock()
	if len(at.ring) < at.cfg.SampleWindow {
		at.ring = append(at.ring, rec)
		at.n = len(at.ring)
	} else {
		at.ring[at.next] = rec
		at.next = (at.next + 1) % len(at.ring)
	}
	n := at.n
	at.mu.Unlock()
	at.m.TraceRecords.Set(int64(n))
}

// sample copies the ring's current contents.
func (at *autoTuner) sample() []workload.Record {
	at.mu.Lock()
	defer at.mu.Unlock()
	return append([]workload.Record(nil), at.ring...)
}

func (at *autoTuner) run() {
	defer close(at.done)
	ticker := time.NewTicker(at.cfg.CheckInterval)
	defer ticker.Stop()
	for {
		select {
		case <-at.runCtx.Done():
			return
		case <-ticker.C:
			at.evaluate()
		}
	}
}

// evaluate runs one advisor pass over the sampled trace. Errors and
// panics are contained: they count a metric and the loop waits for the
// next tick, exactly like the mutate reindexer's rebuildOnce.
func (at *autoTuner) evaluate() {
	recs := at.sample()
	if len(recs) < at.cfg.MinSamples {
		return
	}
	err := at.evaluateOnce(recs)
	if err != nil {
		at.m.Failures.Inc()
	} else {
		at.m.Evaluations.Inc()
	}
	if at.testHookEvaluated != nil {
		at.testHookEvaluated(err)
	}
}

func (at *autoTuner) evaluateOnce(recs []workload.Record) (err error) {
	defer core.Recover(&err)
	// Measure the serving index on the same sample the candidates will
	// replay: the swap decision compares like with like.
	curIx := at.current()
	curKind := at.currentKind()
	curMeas := advise.MeasurePlain(curIx, recs, at.reps)
	var kinds []string
	for _, k := range at.cfg.Candidates {
		kinds = append(kinds, string(k))
	}
	rep, err := advise.Run(at.runCtx, at.db.prep, recs, advise.Config{
		Build:         buildFuncFor(at.db.g, at.opt),
		Candidates:    kinds,
		MaxCandidates: at.cfg.MaxCandidates,
		BuildTimeout:  at.cfg.BuildTimeout,
		Budget:        at.cfg.Budget,
		Reps:          at.reps,
		KeepChosen:    true,
	})
	if err != nil {
		return err
	}
	for i := range rep.Candidates {
		if rep.Candidates[i].Feasible {
			at.m.CandidatesBuilt.Inc()
		} else {
			at.m.BuildFailures.Inc()
		}
	}
	at.report.Store(rep)
	improvement := 0.0
	if curMeas.P99NS > 0 {
		improvement = 1 - float64(rep.ChosenP99NS)/float64(curMeas.P99NS)
	}
	at.m.LastImprovementPermille.Set(int64(1000 * improvement))
	ix, ok := rep.ChosenIndex()
	if !ok || rep.Chosen == curKind || improvement < at.cfg.MinImprovement {
		at.m.SwapsSkipped.Inc()
		return nil
	}
	at.publish(rep.Chosen, ix)
	return nil
}

// publish hot-swaps the serving plain index: instrument (when metrics
// are on), then one atomic pointer store. Queries load the pointer once
// per request, so in-flight requests finish on the index they started
// with and no request observes a half-swapped state.
func (at *autoTuner) publish(kind string, ix Index) {
	at.db.recordFootprint(ix)
	if at.db.metrics != nil {
		ix = core.Instrument(ix, at.db.g, at.db.metrics.Index(ix.Name()))
	}
	at.cur.Store(&ix)
	k := kind
	at.kind.Store(&k)
	at.m.SetKinds(kind, "")
	at.m.Swaps.Inc()
	if at.testHookSwapped != nil {
		at.testHookSwapped(kind)
	}
}

// close stops the background loop and waits for it to exit. The last
// published index keeps serving.
func (at *autoTuner) close() {
	at.closing.Do(func() {
		at.cancel()
		<-at.done
	})
}

// AdvisorStatus is the auto-tuner's externally visible state: the
// serving kind, the advisor metrics, and the last evaluation's full
// report (nil until the first evaluation completes). Served by
// /admin/advise.
type AdvisorStatus struct {
	CurrentKind string              `json:"current_kind"`
	InitialKind string              `json:"initial_kind"`
	Metrics     obs.AdvisorSnapshot `json:"metrics"`
	Report      *AdvisorReport      `json:"report,omitempty"`
}

// AdvisorStatus reports the auto-tuner's state; ok is false when
// DBConfig.AutoTune did not enable it.
func (db *DB) AdvisorStatus() (status AdvisorStatus, ok bool) {
	if db.aut == nil {
		return AdvisorStatus{}, false
	}
	snap := db.aut.m.Snapshot()
	return AdvisorStatus{
		CurrentKind: snap.CurrentKind,
		InitialKind: snap.InitialKind,
		Metrics:     snap,
		Report:      db.aut.report.Load(),
	}, true
}
