package reach

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/labelset"
	"repro/internal/obs"
	"repro/internal/regexpath"
	"repro/internal/traversal"
)

// DB bundles a graph with one index per query class and routes arbitrary
// path-constraint expressions to the right one — the "full-fledged index
// in a GDBMS" integration the paper's §5 envisions. Constraints outside
// the two indexable fragments are answered by product-automaton search
// (§2.3's guided traversal), so every query of the α grammar is supported.
type DB struct {
	g     *Graph
	plain Index
	lcr   LCRIndex
	rlc   RLCIndex
	// registered holds dedicated indexes for hot constraints (§5's
	// query-log-driven scenario), keyed by normalized expression.
	registered map[string]*ConstraintIndex
	// metrics is non-nil when DBConfig.Metrics enabled observability:
	// routing counters, per-index query metrics, and build-phase spans.
	metrics *obs.DBMetrics
}

// DBConfig selects the indexes a DB builds.
type DBConfig struct {
	// Plain selects the plain-reachability index. Default KindBFL.
	Plain Kind
	// LCR selects the alternation index (labeled graphs only). Default
	// LCRP2H.
	LCR LCRKind
	// RLC enables the concatenation index (labeled graphs only).
	// Default true for labeled graphs.
	RLC bool
	// Options passes the per-technique tunables through.
	Options Options
	// Metrics enables the observability layer: build-phase spans are
	// recorded during NewDB, every query is counted and timed per routing
	// class, and the plain index is wrapped to record probe-level
	// decided/fallback/visited detail. See OBSERVABILITY.md. Disabled
	// (the default), queries pay one nil comparison.
	Metrics bool
}

// NewDB builds a DB over g. For unlabeled graphs only the plain index is
// built; genuinely labeled path-constrained queries then return an error
// (trivially plain constraints still work — see Query).
func NewDB(g *Graph, cfg DBConfig) (*DB, error) {
	if cfg.Plain == "" {
		cfg.Plain = KindBFL
	}
	if cfg.LCR == "" {
		cfg.LCR = LCRP2H
	}
	db := &DB{g: g}
	if cfg.Metrics {
		db.metrics = obs.NewDBMetrics()
		if cfg.Options.Spans == nil {
			cfg.Options.Spans = &db.metrics.Build
		}
	}
	var err error
	if db.plain, err = Build(cfg.Plain, g, cfg.Options); err != nil {
		return nil, err
	}
	if db.metrics != nil {
		db.plain = core.Instrument(db.plain, g, db.metrics.Index(db.plain.Name()))
	}
	if g.Labeled() {
		if db.lcr, err = BuildLCR(cfg.LCR, g, cfg.Options); err != nil {
			return nil, err
		}
		db.rlc, err = BuildRLC(g, cfg.Options)
		if err != nil {
			return nil, err
		}
	}
	return db, nil
}

// Graph returns the underlying graph.
func (db *DB) Graph() *Graph { return db.g }

// Metrics returns the DB's metrics root, or nil when DBConfig.Metrics was
// false.
func (db *DB) Metrics() *obs.DBMetrics { return db.metrics }

// MetricsSnapshot captures the DB's metrics; ok is false when the
// observability layer is disabled.
func (db *DB) MetricsSnapshot() (snap obs.Snapshot, ok bool) {
	if db.metrics == nil {
		return obs.Snapshot{}, false
	}
	return db.metrics.Snapshot(), true
}

// PublishExpvar registers the DB's metrics under name in the expvar
// registry (/debug/vars). No-op when metrics are disabled or the name is
// already published.
func (db *DB) PublishExpvar(name string) {
	if db.metrics != nil {
		db.metrics.Publish(name)
	}
}

// Reach answers the plain reachability query Qr(s, t).
func (db *DB) Reach(s, t V) bool {
	if db.metrics == nil {
		return db.plain.Reach(s, t)
	}
	start := time.Now()
	res := db.plain.Reach(s, t)
	db.metrics.Route(obs.RoutePlain).Observe(res, time.Since(start))
	return res
}

// Query answers the path-constrained reachability query Qr(s, t, α),
// where α follows the paper's grammar  α ::= l | α·α | α∪α | α+ | α*
// with '|' (or '∪') for alternation, '.' (or '·' or juxtaposition) for
// concatenation, and postfix '*' / '+'. Label names resolve against the
// graph's label registry.
//
// Routing: alternation-star constraints go to the LCR index,
// concatenation-star constraints to the RLC index, everything else to
// product-automaton search. On unlabeled graphs, constraints whose
// language is insensitive to labels (any alternation-star/plus, or a
// single-label star/plus) reduce to plain reachability and are answered
// by the plain index; genuinely labeled constraints return an error.
func (db *DB) Query(s, t V, alpha string) (bool, error) {
	if db.metrics == nil {
		res, _, err := db.query(s, t, alpha)
		return res, err
	}
	start := time.Now()
	res, route, err := db.query(s, t, alpha)
	if err != nil {
		db.metrics.Errors.Inc()
		return res, err
	}
	db.metrics.Route(route).Observe(res, time.Since(start))
	return res, err
}

func (db *DB) query(s, t V, alpha string) (bool, obs.RouteKind, error) {
	if !db.g.Labeled() {
		res, err := db.queryUnlabeled(s, t, alpha)
		return res, obs.RoutePlain, err
	}
	ast, err := regexpath.Parse(alpha, regexpath.GraphResolver(db.g))
	if err != nil {
		return false, obs.RouteProduct, err
	}
	if ix, ok := db.registered[ast.String()]; ok {
		return ix.Reach(s, t), obs.RouteRegistered, nil
	}
	cl := regexpath.Classify(ast)
	switch cl.Class {
	case regexpath.ClassAlternation:
		if s == t && !cl.PlusOnly {
			return true, obs.RouteLCR, nil
		}
		if cl.PlusOnly {
			// (…)+ requires at least one edge; peel the first step and
			// then answer the star query from each allowed neighbour.
			return db.plusAlternation(s, t, cl.Allowed), obs.RouteLCR, nil
		}
		return db.lcr.ReachLC(s, t, cl.Allowed), obs.RouteLCR, nil
	case regexpath.ClassConcatenation:
		if s == t && !cl.PlusOnly {
			return true, obs.RouteRLC, nil
		}
		return db.rlc.ReachRLC(s, t, cl.Sequence), obs.RouteRLC, nil
	default:
		dfa := regexpath.CompileDFA(regexpath.CompileNFA(ast), db.g.Labels())
		return traversal.ProductBFS(db.g, s, t, dfa), obs.RouteProduct, nil
	}
}

// queryUnlabeled serves path-constrained queries on an unlabeled graph
// when the constraint is trivially plain-reachable. With every edge
// carrying the same implicit label, an alternation-star admits paths of
// every length (≥1 for plus), as does a single-label concatenation-star —
// both reduce to the plain index. Multi-label concatenations constrain
// the path length modulo the sequence length and genuinely need labels.
func (db *DB) queryUnlabeled(s, t V, alpha string) (bool, error) {
	ast, err := regexpath.Parse(alpha, regexpath.AnyResolver())
	if err != nil {
		return false, err
	}
	cl := regexpath.Classify(ast)
	plain := cl.Class == regexpath.ClassAlternation ||
		(cl.Class == regexpath.ClassConcatenation && len(cl.Sequence) == 1)
	if !plain {
		return false, fmt.Errorf(
			"reach: graph is unlabeled and constraint %q depends on edge labels; only label-insensitive constraints (e.g. (a|b)*) are answerable — use Reach for plain queries",
			alpha)
	}
	if s == t && !cl.PlusOnly {
		return true, nil
	}
	if cl.PlusOnly {
		// At least one edge: step to every successor, then plain-star.
		for _, w := range db.g.Succ(s) {
			if w == t || db.plain.Reach(w, t) {
				return true, nil
			}
		}
		return false, nil
	}
	return db.plain.Reach(s, t), nil
}

// plusAlternation answers (l1|l2|...)+ — at least one edge — by stepping
// through every allowed out-edge of s and finishing with the star query.
func (db *DB) plusAlternation(s, t V, allowed labelset.Set) bool {
	succ := db.g.Succ(s)
	labs := db.g.SuccLabels(s)
	for i, w := range succ {
		if !allowed.Has(labs[i]) {
			continue
		}
		if w == t || db.lcr.ReachLC(w, t, allowed) {
			return true
		}
	}
	return false
}

// RegisterConstraint builds a dedicated index for the fixed constraint
// alpha; subsequent Query calls with an equivalent expression answer from
// it by lookups regardless of the constraint's class. This is the §5 "one
// indexing technique for general path constraints" direction, applied per
// hot constraint.
func (db *DB) RegisterConstraint(alpha string) error {
	if !db.g.Labeled() {
		return fmt.Errorf("reach: graph is unlabeled")
	}
	ast, err := regexpath.Parse(alpha, regexpath.GraphResolver(db.g))
	if err != nil {
		return err
	}
	ix, err := BuildConstraint(db.g, alpha)
	if err != nil {
		return err
	}
	if db.registered == nil {
		db.registered = make(map[string]*ConstraintIndex)
	}
	db.registered[ast.String()] = ix
	return nil
}

// ReachPath returns a concrete shortest s-t path witnessing Qr(s, t), or
// nil when t is unreachable. Indexes certify existence; the witness comes
// from one BFS, as GDBMSs do when the user asks for the path itself.
func (db *DB) ReachPath(s, t V) []V {
	if !db.plain.Reach(s, t) {
		return nil
	}
	return traversal.WitnessPath(db.g, s, t)
}

// QueryPath returns the traversed edges of a path satisfying Qr(s, t, α),
// or nil when no such path exists. For s == t with a star constraint the
// empty edge list is returned.
func (db *DB) QueryPath(s, t V, alpha string) ([]GraphEdge, error) {
	if !db.g.Labeled() {
		return nil, fmt.Errorf("reach: graph is unlabeled")
	}
	ast, err := regexpath.Parse(alpha, regexpath.GraphResolver(db.g))
	if err != nil {
		return nil, err
	}
	dfa := regexpath.CompileDFA(regexpath.CompileNFA(ast), db.g.Labels())
	return traversal.ConstrainedWitness(db.g, s, t, dfa), nil
}

// QueryAllowed answers the alternation query with an explicit label set —
// the LCR interface used by analytics loops that build masks directly.
func (db *DB) QueryAllowed(s, t V, labels ...Label) (bool, error) {
	if db.lcr == nil {
		return false, fmt.Errorf("reach: no LCR index (graph unlabeled)")
	}
	if db.metrics == nil {
		return s == t || db.lcr.ReachLC(s, t, labelset.Of(labels...)), nil
	}
	start := time.Now()
	res := s == t || db.lcr.ReachLC(s, t, labelset.Of(labels...))
	db.metrics.Route(obs.RouteLCR).Observe(res, time.Since(start))
	return res, nil
}

// Stats returns the footprint of every built index keyed by its name.
func (db *DB) Stats() map[string]Stats {
	out := map[string]Stats{db.plain.Name(): db.plain.Stats()}
	if db.lcr != nil {
		out[db.lcr.Name()] = db.lcr.Stats()
	}
	if db.rlc != nil {
		out[db.rlc.Name()] = db.rlc.Stats()
	}
	return out
}
