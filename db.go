package reach

import (
	"fmt"

	"repro/internal/labelset"
	"repro/internal/regexpath"
	"repro/internal/traversal"
)

// DB bundles a graph with one index per query class and routes arbitrary
// path-constraint expressions to the right one — the "full-fledged index
// in a GDBMS" integration the paper's §5 envisions. Constraints outside
// the two indexable fragments are answered by product-automaton search
// (§2.3's guided traversal), so every query of the α grammar is supported.
type DB struct {
	g     *Graph
	plain Index
	lcr   LCRIndex
	rlc   RLCIndex
	// registered holds dedicated indexes for hot constraints (§5's
	// query-log-driven scenario), keyed by normalized expression.
	registered map[string]*ConstraintIndex
}

// DBConfig selects the indexes a DB builds.
type DBConfig struct {
	// Plain selects the plain-reachability index. Default KindBFL.
	Plain Kind
	// LCR selects the alternation index (labeled graphs only). Default
	// LCRP2H.
	LCR LCRKind
	// RLC enables the concatenation index (labeled graphs only).
	// Default true for labeled graphs.
	RLC bool
	// Options passes the per-technique tunables through.
	Options Options
}

// NewDB builds a DB over g. For unlabeled graphs only the plain index is
// built; path-constrained queries then return an error.
func NewDB(g *Graph, cfg DBConfig) (*DB, error) {
	if cfg.Plain == "" {
		cfg.Plain = KindBFL
	}
	if cfg.LCR == "" {
		cfg.LCR = LCRP2H
	}
	db := &DB{g: g}
	var err error
	if db.plain, err = Build(cfg.Plain, g, cfg.Options); err != nil {
		return nil, err
	}
	if g.Labeled() {
		if db.lcr, err = BuildLCR(cfg.LCR, g, cfg.Options); err != nil {
			return nil, err
		}
		db.rlc, err = BuildRLC(g, cfg.Options)
		if err != nil {
			return nil, err
		}
	}
	return db, nil
}

// Graph returns the underlying graph.
func (db *DB) Graph() *Graph { return db.g }

// Reach answers the plain reachability query Qr(s, t).
func (db *DB) Reach(s, t V) bool { return db.plain.Reach(s, t) }

// Query answers the path-constrained reachability query Qr(s, t, α),
// where α follows the paper's grammar  α ::= l | α·α | α∪α | α+ | α*
// with '|' (or '∪') for alternation, '.' (or '·' or juxtaposition) for
// concatenation, and postfix '*' / '+'. Label names resolve against the
// graph's label registry.
//
// Routing: alternation-star constraints go to the LCR index,
// concatenation-star constraints to the RLC index, everything else to
// product-automaton search.
func (db *DB) Query(s, t V, alpha string) (bool, error) {
	if !db.g.Labeled() {
		return false, fmt.Errorf("reach: graph is unlabeled; use Reach for plain queries")
	}
	ast, err := regexpath.Parse(alpha, regexpath.GraphResolver(db.g))
	if err != nil {
		return false, err
	}
	if ix, ok := db.registered[ast.String()]; ok {
		return ix.Reach(s, t), nil
	}
	cl := regexpath.Classify(ast)
	switch cl.Class {
	case regexpath.ClassAlternation:
		if s == t && !cl.PlusOnly {
			return true, nil
		}
		if cl.PlusOnly {
			// (…)+ requires at least one edge; peel the first step and
			// then answer the star query from each allowed neighbour.
			return db.plusAlternation(s, t, cl.Allowed), nil
		}
		return db.lcr.ReachLC(s, t, cl.Allowed), nil
	case regexpath.ClassConcatenation:
		if s == t && !cl.PlusOnly {
			return true, nil
		}
		return db.rlc.ReachRLC(s, t, cl.Sequence), nil
	default:
		dfa := regexpath.CompileDFA(regexpath.CompileNFA(ast), db.g.Labels())
		return traversal.ProductBFS(db.g, s, t, dfa), nil
	}
}

// plusAlternation answers (l1|l2|...)+ — at least one edge — by stepping
// through every allowed out-edge of s and finishing with the star query.
func (db *DB) plusAlternation(s, t V, allowed labelset.Set) bool {
	succ := db.g.Succ(s)
	labs := db.g.SuccLabels(s)
	for i, w := range succ {
		if !allowed.Has(labs[i]) {
			continue
		}
		if w == t || db.lcr.ReachLC(w, t, allowed) {
			return true
		}
	}
	return false
}

// RegisterConstraint builds a dedicated index for the fixed constraint
// alpha; subsequent Query calls with an equivalent expression answer from
// it by lookups regardless of the constraint's class. This is the §5 "one
// indexing technique for general path constraints" direction, applied per
// hot constraint.
func (db *DB) RegisterConstraint(alpha string) error {
	if !db.g.Labeled() {
		return fmt.Errorf("reach: graph is unlabeled")
	}
	ast, err := regexpath.Parse(alpha, regexpath.GraphResolver(db.g))
	if err != nil {
		return err
	}
	ix, err := BuildConstraint(db.g, alpha)
	if err != nil {
		return err
	}
	if db.registered == nil {
		db.registered = make(map[string]*ConstraintIndex)
	}
	db.registered[ast.String()] = ix
	return nil
}

// ReachPath returns a concrete shortest s-t path witnessing Qr(s, t), or
// nil when t is unreachable. Indexes certify existence; the witness comes
// from one BFS, as GDBMSs do when the user asks for the path itself.
func (db *DB) ReachPath(s, t V) []V {
	if !db.plain.Reach(s, t) {
		return nil
	}
	return traversal.WitnessPath(db.g, s, t)
}

// QueryPath returns the traversed edges of a path satisfying Qr(s, t, α),
// or nil when no such path exists. For s == t with a star constraint the
// empty edge list is returned.
func (db *DB) QueryPath(s, t V, alpha string) ([]GraphEdge, error) {
	if !db.g.Labeled() {
		return nil, fmt.Errorf("reach: graph is unlabeled")
	}
	ast, err := regexpath.Parse(alpha, regexpath.GraphResolver(db.g))
	if err != nil {
		return nil, err
	}
	dfa := regexpath.CompileDFA(regexpath.CompileNFA(ast), db.g.Labels())
	return traversal.ConstrainedWitness(db.g, s, t, dfa), nil
}

// QueryAllowed answers the alternation query with an explicit label set —
// the LCR interface used by analytics loops that build masks directly.
func (db *DB) QueryAllowed(s, t V, labels ...Label) (bool, error) {
	if db.lcr == nil {
		return false, fmt.Errorf("reach: no LCR index (graph unlabeled)")
	}
	if s == t {
		return true, nil
	}
	return db.lcr.ReachLC(s, t, labelset.Of(labels...)), nil
}

// Stats returns the footprint of every built index keyed by its name.
func (db *DB) Stats() map[string]Stats {
	out := map[string]Stats{db.plain.Name(): db.plain.Stats()}
	if db.lcr != nil {
		out[db.lcr.Name()] = db.lcr.Stats()
	}
	if db.rlc != nil {
		out[db.rlc.Name()] = db.rlc.Stats()
	}
	return out
}
