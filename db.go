package reach

import (
	"context"
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/labelset"
	"repro/internal/obs"
	"repro/internal/qcache"
	"repro/internal/regexpath"
	"repro/internal/rpqindex"
	"repro/internal/tc"
	"repro/internal/traversal"
	"repro/internal/workload"
)

// DB bundles a graph with one index per query class and routes arbitrary
// path-constraint expressions to the right one — the "full-fledged index
// in a GDBMS" integration the paper's §5 envisions. Constraints outside
// the two indexable fragments are answered by product-automaton search
// (§2.3's guided traversal), so every query of the α grammar is supported.
//
// Every query entry point validates its vertices (ErrVertexRange) and
// contains panics escaping an index implementation (ErrIndexPanic), so a
// broken or partially built index can fail a query but never the process.
type DB struct {
	g         *Graph
	plain     Index
	plainKind Kind
	lcr       LCRIndex
	rlc       RLCIndex
	// lcrErr/rlcErr are non-nil when the corresponding build failed and
	// DBConfig.Degraded kept the DB serving: the route runs index-free
	// (online traversal) and Stats/DegradedRoutes expose the cause.
	lcrErr, rlcErr error
	// registered holds dedicated indexes for hot constraints (§5's
	// query-log-driven scenario), keyed by normalized expression.
	registered map[string]*ConstraintIndex
	// extra holds the additional plain indexes of DBConfig.ExtraPlain,
	// built over the shared preprocessing memo.
	extra map[Kind]Index
	// prep is the DB's shared preprocessing memo: every DAG-only index the
	// DB builds draws its SCC condensation from here, so the condensation
	// runs exactly once per NewDB no matter how many indexes want it.
	prep *PreparedGraph
	// cache is the sharded query-result cache, nil unless
	// DBConfig.CacheSize enabled it (every qcache method is nil-safe).
	cache *qcache.Cache
	// metrics is non-nil when DBConfig.Metrics enabled observability:
	// routing counters, per-index query metrics, and build-phase spans.
	metrics *obs.DBMetrics
	// traceEnabled gates the per-request trace lookup (DBConfig.Tracing):
	// when false — the default — query paths never walk the context for a
	// trace, keeping disabled tracing at one bool comparison.
	traceEnabled bool
	// recorder appends one workload record per completed query when
	// DBConfig.RecordWorkload installed it; nil otherwise.
	recorder *workload.Recorder
	// mut is the live-mutation engine, nil unless DBConfig.Mutation
	// enabled it (see mutable.go). When non-nil, plain-reachability
	// queries go through the delta-overlay path so answers stay exact
	// between background rebuilds.
	mut *mutDB
	// aut is the auto-tuning engine, nil unless DBConfig.AutoTune enabled
	// it (see autotune.go). When non-nil, the serving plain index is the
	// one aut currently publishes — initially the configured Plain, later
	// whatever the advisor's measured pick hot-swapped in.
	aut *autoTuner
}

// CacheSnapshot re-exports the query-result cache counters; see
// DB.CacheStats and OBSERVABILITY.md.
type CacheSnapshot = obs.CacheSnapshot

// Request-tracing re-exports. A DB built with DBConfig.Tracing looks for
// a *Trace in the context passed to its *Ctx entry points; library
// callers mint traces from a Tracer and attach them with WithTrace —
// the same machinery internal/server's middleware uses. See
// OBSERVABILITY.md.
type (
	Trace          = obs.Trace
	TraceRecord    = obs.TraceRecord
	Tracer         = obs.Tracer
	TracerSnapshot = obs.TracerSnapshot
)

// NewTracer returns a tracer keeping the most recent `capacity` finished
// traces (and, when slowThreshold > 0, a second ring of traces at or
// over the threshold).
func NewTracer(capacity int, slowThreshold time.Duration) *Tracer {
	return obs.NewTracer(capacity, slowThreshold)
}

// WithTrace returns a context carrying t for the *Ctx query entry points.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	return obs.WithTrace(ctx, t)
}

// TraceFrom extracts the trace WithTrace attached, or nil.
func TraceFrom(ctx context.Context) *Trace {
	return obs.TraceFrom(ctx)
}

// Cache key route tags. Only routes whose (route, s, t, extra) tuple fully
// determines the answer are cached: plain reachability, alternation star
// and plus (extra = label mask), and short concatenation sequences (extra
// = packed sequence). Product-automaton and registered-constraint queries
// are keyed by an expression string, which does not fit an exact fixed
// key, so they are never cached. Degraded routes ARE cached — the online
// fallback is exact, just slow, which makes it the route that profits most.
const (
	cacheRoutePlain uint8 = iota + 1
	cacheRouteLCRStar
	cacheRouteLCRPlus
	cacheRouteRLC
)

// packSeq packs a short concatenation sequence into a cache-key word:
// length in the top 16 bits, labels (uint16) in the low three lanes.
// Sequences longer than three labels do not fit an exact key and report
// ok = false, which skips caching for them.
func packSeq(seq []Label) (extra uint64, ok bool) {
	if len(seq) > 3 {
		return 0, false
	}
	extra = uint64(len(seq)) << 48
	for i, l := range seq {
		extra |= uint64(l) << (16 * i)
	}
	return extra, true
}

// DBConfig selects the indexes a DB builds.
type DBConfig struct {
	// Plain selects the plain-reachability index. Default KindBFL.
	Plain Kind
	// LCR selects the alternation index (labeled graphs only). Default
	// LCRP2H.
	LCR LCRKind
	// RLC enables the concatenation index (labeled graphs only).
	// Default true for labeled graphs.
	RLC bool
	// Options passes the per-technique tunables through.
	Options Options
	// Metrics enables the observability layer: build-phase spans are
	// recorded during NewDB, every query is counted and timed per routing
	// class, and the plain index is wrapped to record probe-level
	// decided/fallback/visited detail. See OBSERVABILITY.md. Disabled
	// (the default), queries pay one nil comparison.
	Metrics bool
	// Degraded keeps the DB serving when an optional index build fails.
	// When an LCR or RLC build panics or is canceled, the DB comes up
	// anyway and answers that query class by online traversal (correct,
	// just slower); DegradedRoutes, Stats and MetricsSnapshot expose the
	// degradation. Configuration errors (bad options, unknown kinds) and
	// plain-index failures always fail NewDB — there is nothing sensible
	// to degrade to. Default false: any build failure fails NewDB.
	Degraded bool
	// ExtraPlain builds additional plain indexes alongside Plain (e.g. a
	// fast-but-big index next to a compact one for comparison serving).
	// All of them share the DB's preprocessing memo, so the SCC
	// condensation runs once regardless of how many kinds are listed.
	// Query them via PlainIndex; duplicates of Plain are skipped.
	ExtraPlain []Kind
	// CacheSize enables the sharded query-result cache with room for this
	// many entries (0 disables it, the default). Cached routes are the
	// ones whose key determines the answer exactly — plain reachability,
	// alternation masks, short concatenation sequences — including their
	// degraded fallbacks; see OBSERVABILITY.md for the cache/* counters.
	CacheSize int
	// Tracing enables request-scoped trace recording: the *Ctx query
	// entry points look for an obs.Trace in their context (placed there
	// by the serving layer's per-request middleware, see internal/server)
	// and append named phase timings — cache lookup, index probe,
	// fallback traversal — to it. Disabled (the default), the query path
	// pays one bool comparison and never walks the context.
	Tracing bool
	// RecordWorkload, when non-nil, appends one record per completed
	// query — (s, t, constraint, route, outcome, latency) — to the given
	// recorder: the capture `reachcli replay` re-runs against any index
	// kind and the future workload-adaptive advisor consumes. The caller
	// owns the recorder's lifecycle (Close flushes). Recording times
	// every query (two clock reads each); see OBSERVABILITY.md.
	RecordWorkload *WorkloadRecorder
	// PlainSnapshot, when non-nil, warm-starts the plain index from a
	// snapshot previously written with SaveIndex or SaveIndexMapped
	// instead of building it: the load is a linear deserialization
	// recorded as an "index/load" span (a warm-started DB's build
	// timeline has no "index/build" phase). The snapshot must pair with g
	// and with Plain — the snapshottable kinds are KindBFL (the default),
	// KindPLL, and KindDL; a kind or graph mismatch fails NewDB with a
	// typed error. LCR/RLC indexes are always built fresh.
	PlainSnapshot io.Reader
	// PlainSnapshotMapped, when non-empty, warm-starts the plain index by
	// page-mapping the mapped-layout snapshot file at this path (see
	// LoadIndexMapped): the label arrays are zero-copy views into the
	// mapping, so cold start is page mapping plus a checksum pass instead
	// of a decode pass. Mutually exclusive with PlainSnapshot. The same
	// kind pairing rules apply.
	PlainSnapshotMapped string
	// PlainIndex, when non-nil, installs a pre-built index as the plain
	// engine instead of building (or snapshot-loading) one. The index must
	// answer over g; Plain should name it (when empty it defaults to the
	// index's Name()). This is how NewShardedDB mounts the sharded
	// scatter-gather engine behind the full DB surface. Mutually exclusive
	// with PlainSnapshot, PlainSnapshotMapped, and Mutation.
	PlainIndex Index
	// Mutation, when non-nil, makes the DB writable: AddEdge/RemoveEdge/
	// Mutate group-commit through a write-ahead log, queries answer
	// exactly from the frozen index plus a delta overlay, and a
	// background reindexer periodically folds the delta into a fresh
	// index published by hot swap. Unlabeled graphs only; mutually
	// exclusive with CacheSize and ExtraPlain. An existing WAL at
	// Mutation.WALPath is replayed during NewDB (after any PlainSnapshot
	// load), so acknowledged mutations survive restarts. See mutable.go
	// and DESIGN.md ("Mutation & durability").
	Mutation *MutationConfig
	// AutoTune, when non-nil, runs the workload-adaptive index advisor in
	// the background: the DB samples its own plain-query traffic, and at
	// every check interval the advisor shortlists and shadow-builds
	// candidate kinds, replays the sampled trace against each, and
	// hot-swaps the serving plain index when the pick's measured p99
	// improves on the current index by the configured margin. Mutually
	// exclusive with Mutation (the reindexer owns that swap path) and
	// PlainIndex (the sharded engine has no single kind to retune). See
	// autotune.go and DESIGN.md ("Advisor").
	AutoTune *AutoTuneConfig
}

// NewDB builds a DB over g. For unlabeled graphs only the plain index is
// built; genuinely labeled path-constrained queries then return an error
// (trivially plain constraints still work — see Query).
func NewDB(g *Graph, cfg DBConfig) (*DB, error) {
	return NewDBCtx(context.Background(), g, cfg)
}

// NewDBCtx is NewDB under a context: index builds poll ctx at cooperative
// checkpoints. With cfg.Degraded a canceled or panicked LCR/RLC build
// degrades that route instead of failing construction; without it (or for
// the plain index) the first failure aborts with a typed error.
func NewDBCtx(ctx context.Context, g *Graph, cfg DBConfig) (*DB, error) {
	if g == nil {
		return nil, fmt.Errorf("%w: nil graph", ErrBadOptions)
	}
	if cfg.Plain == "" {
		if cfg.PlainIndex != nil {
			cfg.Plain = Kind(cfg.PlainIndex.Name())
		} else {
			cfg.Plain = KindBFL
		}
	}
	if cfg.LCR == "" {
		cfg.LCR = LCRP2H
	}
	if err := checkMutationConfig(g, cfg); err != nil {
		return nil, err
	}
	if err := checkAutoTuneConfig(cfg); err != nil {
		return nil, err
	}
	db := &DB{
		g:            g,
		plainKind:    cfg.Plain,
		cache:        qcache.New(cfg.CacheSize),
		traceEnabled: cfg.Tracing,
		recorder:     cfg.RecordWorkload,
	}
	if cfg.Metrics {
		db.metrics = obs.NewDBMetrics()
		if cfg.Options.Spans == nil {
			cfg.Options.Spans = &db.metrics.Build
		}
		if db.cache != nil {
			db.metrics.SetCacheSource(db.cache.Stats)
		}
	}
	// One preprocessing memo for every index the DB builds: the first
	// DAG-only build condenses, the rest hit the memo (visible as
	// cached=true "scc/condense" spans when metrics are on).
	if cfg.Options.Prepared == nil {
		cfg.Options.Prepared = Prepare(g)
	}
	db.prep = cfg.Options.Prepared
	var err error
	warm := cfg.PlainSnapshot != nil || cfg.PlainSnapshotMapped != ""
	if warm && cfg.PlainIndex == nil && !snapshottableKind(cfg.Plain) {
		return nil, fmt.Errorf("%w: snapshot warm-start supports Plain in {%q, %q, %q}, not %q",
			ErrBadOptions, KindBFL, KindPLL, KindDL, cfg.Plain)
	}
	switch {
	case cfg.PlainIndex != nil && warm:
		return nil, fmt.Errorf("%w: PlainIndex is mutually exclusive with snapshot warm-start", ErrBadOptions)
	case cfg.PlainIndex != nil && cfg.Mutation != nil:
		return nil, fmt.Errorf("%w: PlainIndex is mutually exclusive with Mutation", ErrBadOptions)
	case cfg.PlainSnapshot != nil && cfg.PlainSnapshotMapped != "":
		return nil, fmt.Errorf("%w: PlainSnapshot and PlainSnapshotMapped are mutually exclusive", ErrBadOptions)
	case cfg.PlainIndex != nil:
		db.plain = cfg.PlainIndex
	case cfg.PlainSnapshotMapped != "":
		db.plain, err = LoadIndexMapped(cfg.PlainSnapshotMapped, g, cfg.Options)
	case cfg.PlainSnapshot != nil:
		db.plain, err = LoadIndex(cfg.PlainSnapshot, g, cfg.Options)
	default:
		db.plain, err = BuildCtx(ctx, cfg.Plain, g, cfg.Options)
	}
	if err != nil {
		return nil, err
	}
	if warm {
		if want, got := plainKindName(cfg.Plain), db.plain.Name(); want != got {
			return nil, fmt.Errorf("%w: snapshot contains a %q index but Plain is %q (%s)", ErrBadOptions, got, cfg.Plain, want)
		}
	}
	db.recordFootprint(db.plain)
	if db.metrics != nil {
		db.plain = core.Instrument(db.plain, g, db.metrics.Index(db.plain.Name()))
	}
	for _, kind := range cfg.ExtraPlain {
		if kind == cfg.Plain || db.extra[kind] != nil {
			continue
		}
		ix, err := BuildCtx(ctx, kind, g, cfg.Options)
		if err != nil {
			return nil, err
		}
		if db.extra == nil {
			db.extra = make(map[Kind]Index, len(cfg.ExtraPlain))
		}
		db.extra[kind] = ix
		db.recordFootprint(ix)
	}
	if g.Labeled() {
		if db.lcr, err = BuildLCRCtx(ctx, cfg.LCR, g, cfg.Options); err != nil {
			if !degradable(cfg, err) {
				return nil, err
			}
			db.lcrErr = err
			db.countBuildFault(err)
		}
		if db.rlc, err = BuildRLCCtx(ctx, g, cfg.Options); err != nil {
			if !degradable(cfg, err) {
				return nil, err
			}
			db.rlcErr = err
			db.countBuildFault(err)
		}
	}
	if db.metrics != nil {
		var names []string
		if db.lcrErr != nil {
			names = append(names, "lcr")
		}
		if db.rlcErr != nil {
			names = append(names, "rlc")
		}
		if names != nil {
			db.metrics.SetDegraded(names)
		}
	}
	if cfg.Mutation != nil {
		if err := db.initMutation(cfg); err != nil {
			return nil, err
		}
	}
	if cfg.AutoTune != nil {
		db.initAutoTune(cfg)
	}
	return db, nil
}

// snapshottableKind reports whether SaveIndex/LoadIndex have a codec for
// this plain kind.
func snapshottableKind(k Kind) bool {
	return k == KindBFL || k == KindPLL || k == KindDL
}

// plainKindName maps a snapshottable kind to the Name() its loaded index
// reports, so a warm start can detect a snapshot of the wrong kind.
func plainKindName(k Kind) string {
	switch k {
	case KindBFL:
		return "BFL"
	case KindPLL:
		return "PLL"
	case KindDL:
		return "DL"
	}
	return string(k)
}

// recordFootprint publishes ix's section-split footprint into the
// metrics layer (index_size_bytes on /metrics) when both observability
// and the index's size breakdown are available.
func (db *DB) recordFootprint(ix Index) {
	if db.metrics == nil || ix == nil {
		return
	}
	if b, ok := core.SizesOf(ix); ok {
		db.metrics.Index(ix.Name()).SetFootprint(int64(b.Offsets), int64(b.Labels), int64(b.Aux))
	}
}

// degradable reports whether cfg tolerates this build failure. Only
// runtime faults (panic, cancellation) degrade; configuration errors
// would fail identically on every rebuild and so fail fast.
func degradable(cfg DBConfig, err error) bool {
	return cfg.Degraded &&
		(errors.Is(err, ErrIndexPanic) || errors.Is(err, ErrBuildCanceled))
}

func (db *DB) countBuildFault(err error) {
	if db.metrics == nil {
		return
	}
	db.metrics.Errors.Inc()
	if errors.Is(err, ErrIndexPanic) {
		db.metrics.Panics.Inc()
	}
	if errors.Is(err, ErrBuildCanceled) {
		db.metrics.Canceled.Inc()
	}
}

// Graph returns the underlying graph. On a mutable DB this is the
// current frozen base graph (the one the serving index was built over) —
// it advances at every background rebuild but does not reflect the
// not-yet-folded overlay; the vertex universe and names never change.
func (db *DB) Graph() *Graph {
	if db.mut != nil {
		return db.mut.state.Load().g
	}
	return db.g
}

// Prepared returns the DB's shared preprocessing memo. Tests and callers
// building further indexes over the same graph can pass it through
// Options.Prepared to keep sharing the condensation.
func (db *DB) Prepared() *PreparedGraph { return db.prep }

// PlainIndex returns the plain index built for kind: the primary one when
// kind is the configured Plain, otherwise the matching ExtraPlain entry.
// ok is false when no index of that kind was built. On an auto-tuned DB
// the advisor's currently serving kind resolves to the swapped-in index.
func (db *DB) PlainIndex(kind Kind) (ix Index, ok bool) {
	if db.aut != nil && string(kind) == db.aut.currentKind() {
		return db.aut.current(), true
	}
	if kind == db.plainKind {
		return db.plain, true
	}
	ix, ok = db.extra[kind]
	return ix, ok
}

// plainCurrent resolves the serving plain index: the advisor's current
// pick on an auto-tuned DB, the built Plain otherwise. Query paths load
// it once per query so a concurrent hot swap cannot split a decision.
func (db *DB) plainCurrent() Index {
	if db.aut != nil {
		return db.aut.current()
	}
	return db.plain
}

// CacheStats snapshots the query-result cache counters; ok is false when
// DBConfig.CacheSize left the cache disabled.
func (db *DB) CacheStats() (snap CacheSnapshot, ok bool) {
	if db.cache == nil {
		return CacheSnapshot{}, false
	}
	return db.cache.Stats(), true
}

// DegradedRoutes reports the serving routes running index-free after a
// tolerated build failure, keyed "lcr"/"rlc", with the build error as the
// value. Empty (nil) on a fully healthy DB.
func (db *DB) DegradedRoutes() map[string]error {
	var out map[string]error
	if db.lcrErr != nil {
		out = map[string]error{"lcr": db.lcrErr}
	}
	if db.rlcErr != nil {
		if out == nil {
			out = map[string]error{}
		}
		out["rlc"] = db.rlcErr
	}
	return out
}

// Metrics returns the DB's metrics root, or nil when DBConfig.Metrics was
// false.
func (db *DB) Metrics() *obs.DBMetrics { return db.metrics }

// MetricsSnapshot captures the DB's metrics; ok is false when the
// observability layer is disabled.
func (db *DB) MetricsSnapshot() (snap obs.Snapshot, ok bool) {
	if db.metrics == nil {
		return obs.Snapshot{}, false
	}
	return db.metrics.Snapshot(), true
}

// PublishExpvar registers the DB's metrics under name in the expvar
// registry (/debug/vars). No-op when metrics are disabled or the name is
// already published.
func (db *DB) PublishExpvar(name string) {
	if db.metrics != nil {
		db.metrics.Publish(name)
	}
}

// boundary is the deferred panic barrier of every query entry point: a
// panic escaping an index implementation becomes ErrIndexPanic (with the
// panicking goroutine's stack in the message) instead of crashing the
// caller, and the fault is counted when metrics are on.
func (db *DB) boundary(errp *error) {
	r := recover()
	if r == nil {
		return
	}
	err := core.PanicError(r)
	*errp = err
	if db.metrics != nil {
		db.metrics.Errors.Inc()
		if errors.Is(err, ErrIndexPanic) {
			db.metrics.Panics.Inc()
		}
		if errors.Is(err, ErrBuildCanceled) {
			db.metrics.Canceled.Inc()
		}
	}
}

// Reach answers the plain reachability query Qr(s, t). Out-of-range
// vertices yield ErrVertexRange.
func (db *DB) Reach(s, t V) (bool, error) {
	return db.ReachCtx(nil, s, t)
}

// ReachCtx is Reach under a context: an already-canceled ctx returns its
// error without touching the index. (Point lookups are microsecond-scale,
// so there is no mid-query polling on this path; ctx matters when callers
// share one cancellation across many lookups.)
func (db *DB) ReachCtx(ctx context.Context, s, t V) (res bool, err error) {
	if err := core.CheckPair(db.g.N(), s, t); err != nil {
		return false, err
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			db.countCanceled()
			return false, err
		}
	}
	defer db.boundary(&err)
	tr := db.traceFrom(ctx)
	var start time.Time
	timed := db.metrics != nil || db.recorder != nil || db.aut != nil
	if timed {
		start = time.Now()
	}
	key := qcache.Key{Route: cacheRoutePlain, S: s, T: t}
	var hit bool
	if db.cache != nil {
		tok := tr.Begin("cache/lookup")
		res, hit = db.cache.Get(key)
		tr.End(tok)
	}
	if !hit {
		tok := tr.Begin("index/probe")
		res = db.reachCurrent(s, t)
		tr.End(tok)
		db.cache.Put(key, res)
	}
	tr.SetRoute(obs.RoutePlain.String())
	if timed {
		d := time.Since(start)
		if db.metrics != nil {
			db.metrics.Route(obs.RoutePlain).Observe(res, d)
		}
		db.record(s, t, "", nil, obs.RoutePlain, res, hit, d)
	}
	return res, nil
}

// traceFrom resolves the request's trace: nil unless DBConfig.Tracing is
// on AND the context carries one — the two-step gate that keeps the
// disabled path at a bool comparison instead of a context walk.
func (db *DB) traceFrom(ctx context.Context) *obs.Trace {
	if !db.traceEnabled || ctx == nil {
		return nil
	}
	return obs.TraceFrom(ctx)
}

// record appends one workload record when capture is enabled, and feeds
// the auto-tuner's in-memory sample ring on plain routes. cached marks a
// result-cache hit: its latency is a cache-hit latency, so replay
// scoring skips it (and the auto-tuner never samples it).
func (db *DB) record(s, t V, alpha string, labels []Label, route obs.RouteKind, res, cached bool, d time.Duration) {
	if db.recorder == nil && db.aut == nil {
		return
	}
	var ls []uint16
	if len(labels) > 0 {
		ls = make([]uint16, len(labels))
		for i, l := range labels {
			ls[i] = uint16(l)
		}
	}
	rec := workload.Record{
		S:       uint32(s),
		T:       uint32(t),
		Alpha:   alpha,
		Labels:  ls,
		Route:   route.String(),
		Outcome: res,
		Cached:  cached,
		Latency: d,
	}
	if db.recorder != nil {
		db.recorder.Record(rec)
	}
	if db.aut != nil && route == obs.RoutePlain && !cached && alpha == "" && ls == nil {
		db.aut.observe(rec)
	}
}

func (db *DB) countCanceled() {
	if db.metrics != nil {
		db.metrics.Canceled.Inc()
	}
}

// Query answers the path-constrained reachability query Qr(s, t, α),
// where α follows the paper's grammar  α ::= l | α·α | α∪α | α+ | α*
// with '|' (or '∪') for alternation, '.' (or '·' or juxtaposition) for
// concatenation, and postfix '*' / '+'. Label names resolve against the
// graph's label registry.
//
// Routing: alternation-star constraints go to the LCR index,
// concatenation-star constraints to the RLC index, everything else to
// product-automaton search. On unlabeled graphs, constraints whose
// language is insensitive to labels (any alternation-star/plus, or a
// single-label star/plus) reduce to plain reachability and are answered
// by the plain index; genuinely labeled constraints return an error.
// Routes whose index build was degraded (see DBConfig.Degraded) are
// answered by online traversal instead of failing.
func (db *DB) Query(s, t V, alpha string) (bool, error) {
	return db.QueryCtx(nil, s, t, alpha)
}

// QueryCtx is Query under a context: the product-automaton route (the one
// query path that can traverse a large graph fraction) polls ctx and
// returns its error when canceled; index-lookup routes check ctx once up
// front.
func (db *DB) QueryCtx(ctx context.Context, s, t V, alpha string) (res bool, err error) {
	if err := core.CheckPair(db.g.N(), s, t); err != nil {
		return false, err
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			db.countCanceled()
			return false, err
		}
	}
	defer db.boundary(&err)
	tr := db.traceFrom(ctx)
	timed := db.metrics != nil || db.recorder != nil
	if !timed {
		res, route, _, err := db.query(ctx, tr, s, t, alpha)
		if err == nil {
			tr.SetRoute(route.String())
		}
		return res, err
	}
	start := time.Now()
	res, route, cached, err := db.query(ctx, tr, s, t, alpha)
	if err != nil {
		if db.metrics != nil {
			db.metrics.Errors.Inc()
			if ctx != nil && ctx.Err() != nil {
				db.metrics.Canceled.Inc()
			}
		}
		return res, err
	}
	tr.SetRoute(route.String())
	d := time.Since(start)
	if db.metrics != nil {
		db.metrics.Route(route).Observe(res, d)
	}
	db.record(s, t, alpha, nil, route, res, cached, d)
	return res, err
}

func (db *DB) query(ctx context.Context, tr *obs.Trace, s, t V, alpha string) (bool, obs.RouteKind, bool, error) {
	if !db.g.Labeled() {
		res, err := db.queryUnlabeled(s, t, alpha)
		return res, obs.RoutePlain, false, err
	}
	tok := tr.Begin("parse")
	ast, err := regexpath.Parse(alpha, regexpath.GraphResolver(db.g))
	tr.End(tok)
	if err != nil {
		return false, obs.RouteProduct, false, fmt.Errorf("%w: %v", ErrBadQuery, err)
	}
	if ix, ok := db.registered[ast.String()]; ok {
		tok := tr.Begin("index/registered")
		res := ix.Reach(s, t)
		tr.End(tok)
		return res, obs.RouteRegistered, false, nil
	}
	cl := regexpath.Classify(ast)
	switch cl.Class {
	case regexpath.ClassAlternation:
		if s == t && !cl.PlusOnly {
			return true, db.lcrRoute(), false, nil
		}
		if cl.PlusOnly {
			// (…)+ requires at least one edge; peel the first step and
			// then answer the star query from each allowed neighbour.
			res, cached := db.plusAlternation(tr, s, t, cl.Allowed)
			return res, db.lcrRoute(), cached, nil
		}
		res, route, cached := db.reachLC(tr, s, t, cl.Allowed)
		return res, route, cached, nil
	case regexpath.ClassConcatenation:
		if s == t && !cl.PlusOnly {
			return true, db.rlcRoute(), false, nil
		}
		res, route, cached := db.reachRLC(tr, s, t, cl.Sequence)
		return res, route, cached, nil
	default:
		tok := tr.Begin("fallback/product-bfs")
		dfa := regexpath.CompileDFA(regexpath.CompileNFA(ast), db.g.Labels())
		res, err := traversal.ProductBFSCtx(ctx, db.g, s, t, dfa)
		tr.End(tok)
		return res, obs.RouteProduct, false, err
	}
}

func (db *DB) lcrRoute() obs.RouteKind {
	if db.lcr == nil {
		return obs.RouteDegradedLCR
	}
	return obs.RouteLCR
}

func (db *DB) rlcRoute() obs.RouteKind {
	if db.rlc == nil {
		return obs.RouteDegradedRLC
	}
	return obs.RouteRLC
}

// reachLC answers the alternation-star query through the result cache,
// the LCR index, or — on a degraded DB — a label-constrained BFS on the
// graph itself. The label mask is the cache key's extra word, so distinct
// masks over one vertex pair cache independently. cached reports a
// result-cache hit (the latency the caller observed is a lookup, not a
// probe).
func (db *DB) reachLC(tr *obs.Trace, s, t V, allowed labelset.Set) (bool, obs.RouteKind, bool) {
	key := qcache.Key{Route: cacheRouteLCRStar, S: s, T: t, Extra: uint64(allowed)}
	if db.cache != nil {
		tok := tr.Begin("cache/lookup")
		res, ok := db.cache.Get(key)
		tr.End(tok)
		if ok {
			return res, db.lcrRoute(), true
		}
	}
	var res bool
	route := obs.RouteLCR
	if db.lcr != nil {
		tok := tr.Begin("index/lcr")
		res = db.lcr.ReachLC(s, t, allowed)
		tr.End(tok)
	} else {
		tok := tr.Begin("fallback/label-bfs")
		res = traversal.LabelConstrainedBFS(db.g, s, t, uint64(allowed))
		tr.End(tok)
		route = obs.RouteDegradedLCR
	}
	db.cache.Put(key, res)
	return res, route, false
}

// reachRLC answers the concatenation-star query through the result cache,
// the RLC index, or — on a degraded DB — the online phase-tracking
// search. Only sequences short enough to pack into the key's extra word
// exactly (≤ 3 labels) are cached; longer ones always compute.
func (db *DB) reachRLC(tr *obs.Trace, s, t V, seq []Label) (bool, obs.RouteKind, bool) {
	extra, packable := packSeq(seq)
	key := qcache.Key{Route: cacheRouteRLC, S: s, T: t, Extra: extra}
	if packable && db.cache != nil {
		tok := tr.Begin("cache/lookup")
		res, ok := db.cache.Get(key)
		tr.End(tok)
		if ok {
			return res, db.rlcRoute(), true
		}
	}
	var res bool
	route := obs.RouteRLC
	if db.rlc != nil {
		tok := tr.Begin("index/rlc")
		res = db.rlc.ReachRLC(s, t, seq)
		tr.End(tok)
	} else {
		tok := tr.Begin("fallback/rlc-traversal")
		res = tc.RLCReach(db.g, s, t, seq, false)
		tr.End(tok)
		route = obs.RouteDegradedRLC
	}
	if packable {
		db.cache.Put(key, res)
	}
	return res, route, false
}

// queryUnlabeled serves path-constrained queries on an unlabeled graph
// when the constraint is trivially plain-reachable. With every edge
// carrying the same implicit label, an alternation-star admits paths of
// every length (≥1 for plus), as does a single-label concatenation-star —
// both reduce to the plain index. Multi-label concatenations constrain
// the path length modulo the sequence length and genuinely need labels.
func (db *DB) queryUnlabeled(s, t V, alpha string) (bool, error) {
	ast, err := regexpath.Parse(alpha, regexpath.AnyResolver())
	if err != nil {
		return false, fmt.Errorf("%w: %v", ErrBadQuery, err)
	}
	cl := regexpath.Classify(ast)
	plain := cl.Class == regexpath.ClassAlternation ||
		(cl.Class == regexpath.ClassConcatenation && len(cl.Sequence) == 1)
	if !plain {
		return false, fmt.Errorf(
			"%w: graph is unlabeled and constraint %q depends on edge labels; only label-insensitive constraints (e.g. (a|b)*) are answerable — use Reach for plain queries",
			ErrBadQuery, alpha)
	}
	if s == t && !cl.PlusOnly {
		return true, nil
	}
	if cl.PlusOnly {
		// At least one edge: step to every successor, then plain-star.
		if db.mut != nil {
			st := db.mut.state.Load()
			return st.eachSucc(s, func(w V) bool {
				return w == t || st.reach(w, t)
			}), nil
		}
		ix := db.plainCurrent()
		for _, w := range db.g.Succ(s) {
			if w == t || ix.Reach(w, t) {
				return true, nil
			}
		}
		return false, nil
	}
	return db.reachCurrent(s, t), nil
}

// plusAlternation answers (l1|l2|...)+ — at least one edge — by stepping
// through every allowed out-edge of s and finishing with the star query.
// Plus queries cache under their own route tag: (mask)+ and (mask)* give
// different answers on the same pair (s == t, or t only reachable via the
// empty path), so the two must never share a key.
func (db *DB) plusAlternation(tr *obs.Trace, s, t V, allowed labelset.Set) (bool, bool) {
	key := qcache.Key{Route: cacheRouteLCRPlus, S: s, T: t, Extra: uint64(allowed)}
	if res, ok := db.cache.Get(key); ok {
		return res, true
	}
	res := false
	succ := db.g.Succ(s)
	labs := db.g.SuccLabels(s)
	for i, w := range succ {
		if !allowed.Has(labs[i]) {
			continue
		}
		if w == t {
			res = true
			break
		}
		if r, _, _ := db.reachLC(tr, w, t, allowed); r {
			res = true
			break
		}
	}
	db.cache.Put(key, res)
	return res, false
}

// RegisterConstraint builds a dedicated index for the fixed constraint
// alpha; subsequent Query calls with an equivalent expression answer from
// it by lookups regardless of the constraint's class. This is the §5 "one
// indexing technique for general path constraints" direction, applied per
// hot constraint.
func (db *DB) RegisterConstraint(alpha string) (err error) {
	if !db.g.Labeled() {
		return fmt.Errorf("%w: graph is unlabeled", ErrBadQuery)
	}
	ast, err := regexpath.Parse(alpha, regexpath.GraphResolver(db.g))
	if err != nil {
		return fmt.Errorf("%w: %v", ErrBadQuery, err)
	}
	defer db.boundary(&err)
	// The expression was parsed once above for validation and map keying;
	// hand the AST through instead of parsing again inside the builder.
	ix := rpqindex.NewFromAST(db.g, alpha, ast)
	if db.registered == nil {
		db.registered = make(map[string]*ConstraintIndex)
	}
	db.registered[ast.String()] = ix
	return nil
}

// ReachPath returns a concrete shortest s-t path witnessing Qr(s, t), or
// nil when t is unreachable. Indexes certify existence; the witness comes
// from one BFS, as GDBMSs do when the user asks for the path itself.
func (db *DB) ReachPath(s, t V) (path []V, err error) {
	if err := core.CheckPair(db.g.N(), s, t); err != nil {
		return nil, err
	}
	defer db.boundary(&err)
	if db.mut != nil {
		// One state load for both the decision and the witness, so a
		// concurrent commit or hot swap cannot split them.
		st := db.mut.state.Load()
		if !st.reach(s, t) {
			return nil, nil
		}
		if st.ov.Empty() {
			return traversal.WitnessPath(st.g, s, t), nil
		}
		return st.witnessPath(s, t), nil
	}
	if !db.plainCurrent().Reach(s, t) {
		return nil, nil
	}
	return traversal.WitnessPath(db.g, s, t), nil
}

// QueryPath returns the traversed edges of a path satisfying Qr(s, t, α),
// or nil when no such path exists. For s == t with a star constraint the
// empty edge list is returned.
func (db *DB) QueryPath(s, t V, alpha string) (edges []GraphEdge, err error) {
	if err := core.CheckPair(db.g.N(), s, t); err != nil {
		return nil, err
	}
	if !db.g.Labeled() {
		return nil, fmt.Errorf("%w: graph is unlabeled", ErrBadQuery)
	}
	ast, err := regexpath.Parse(alpha, regexpath.GraphResolver(db.g))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadQuery, err)
	}
	defer db.boundary(&err)
	dfa := regexpath.CompileDFA(regexpath.CompileNFA(ast), db.g.Labels())
	return traversal.ConstrainedWitness(db.g, s, t, dfa), nil
}

// QueryAllowed answers the alternation query with an explicit label set —
// the LCR interface used by analytics loops that build masks directly.
// On a degraded DB the answer comes from online traversal.
func (db *DB) QueryAllowed(s, t V, labels ...Label) (res bool, err error) {
	if err := core.CheckPair(db.g.N(), s, t); err != nil {
		return false, err
	}
	if !db.g.Labeled() {
		return false, fmt.Errorf("%w: no LCR index (graph unlabeled)", ErrBadQuery)
	}
	defer db.boundary(&err)
	timed := db.metrics != nil || db.recorder != nil
	if !timed {
		if s == t {
			return true, nil
		}
		res, _, _ := db.reachLC(nil, s, t, labelset.Of(labels...))
		return res, nil
	}
	start := time.Now()
	res = s == t
	route := db.lcrRoute()
	cached := false
	if !res {
		res, route, cached = db.reachLC(nil, s, t, labelset.Of(labels...))
	}
	d := time.Since(start)
	if db.metrics != nil {
		db.metrics.Route(route).Observe(res, d)
	}
	db.record(s, t, "", labels, route, res, cached, d)
	return res, nil
}

// Stats returns the footprint of every built index keyed by its name.
// Degraded routes appear under "degraded:lcr"/"degraded:rlc" with zero
// footprint, so operators see at a glance which class lost its index.
func (db *DB) Stats() map[string]Stats {
	plain := db.plainCurrent()
	out := map[string]Stats{plain.Name(): plain.Stats()}
	for _, ix := range db.extra {
		out[ix.Name()] = ix.Stats()
	}
	if db.lcr != nil {
		out[db.lcr.Name()] = db.lcr.Stats()
	} else if db.lcrErr != nil {
		out["degraded:lcr"] = Stats{}
	}
	if db.rlc != nil {
		out[db.rlc.Name()] = db.rlc.Stats()
	} else if db.rlcErr != nil {
		out["degraded:rlc"] = Stats{}
	}
	return out
}
