package reach

// Tests for the live-mutation subsystem: exactness of the delta-overlay
// query path against the exact transitive closure, durability across
// restarts and injected faults, and availability across rebuild panics.
// See DESIGN.md, "Mutation & durability".

import (
	"context"
	"errors"
	"math/rand"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/gen"
	"repro/internal/mutate"
	"repro/internal/tc"
)

// newMutableDB builds a mutable DB over g with a WAL in a test temp dir.
func newMutableDB(t *testing.T, g *Graph, mc MutationConfig, metrics bool) *DB {
	t.Helper()
	if mc.WALPath == "" {
		mc.WALPath = filepath.Join(t.TempDir(), "test.wal")
	}
	db, err := NewDB(g, DBConfig{Mutation: &mc, Metrics: metrics})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

// checkExact compares the DB against the exact closure of the mirrored
// live graph on every vertex pair (the test graphs are small).
func checkExact(t *testing.T, db *DB, mirror *mutableCopy2, when string) {
	t.Helper()
	oracle := tc.NewClosure(mirror.freeze())
	n := mirror.n
	for s := 0; s < n; s++ {
		for tt := 0; tt < n; tt++ {
			got, err := db.Reach(V(s), V(tt))
			if err != nil {
				t.Fatalf("%s: Reach(%d,%d): %v", when, s, tt, err)
			}
			if want := oracle.Reach(V(s), V(tt)); got != want {
				st := db.mut.state.Load()
				t.Fatalf("%s: Reach(%d,%d) = %v, want %v (overlay +%d/-%d)",
					when, s, tt, got, want, st.ov.AddedCount(), st.ov.RemovedCount())
			}
		}
	}
}

// randomOp mutates the mirror and returns the matching EdgeOp. Removals
// prefer existing edges so both overlay sets get exercised.
func randomOp(rng *rand.Rand, mirror *mutableCopy2) EdgeOp {
	n := mirror.n
	if rng.Intn(3) == 0 && len(mirror.edges) > 0 {
		for e := range mirror.edges {
			mirror.remove(e[0], e[1])
			return EdgeOp{Remove: true, From: e[0], To: e[1]}
		}
	}
	u, v := V(rng.Intn(n)), V(rng.Intn(n))
	if rng.Intn(8) == 0 { // occasional remove of a (likely) absent edge
		mirror.remove(u, v)
		return EdgeOp{Remove: true, From: u, To: v}
	}
	mirror.insert(u, v)
	return EdgeOp{From: u, To: v}
}

// TestMutableExactness drives random mutations with rebuilds disabled
// (the overlay carries everything) and checks the DB against the exact
// transitive closure after every batch — the core exactness property at
// every point between flushes.
func TestMutableExactness(t *testing.T) {
	g := gen.RandomDAG(gen.Config{N: 40, M: 80, Seed: 7})
	db := newMutableDB(t, g, MutationConfig{
		RebuildThreshold: -1, // pin the overlay: pure delta-path coverage
		Fsync:            FsyncNever,
	}, false)
	mirror := mutableCopy(g)
	rng := rand.New(rand.NewSource(77))
	ctx := context.Background()
	for round := 0; round < 30; round++ {
		ops := make([]EdgeOp, 1+rng.Intn(4))
		for i := range ops {
			ops[i] = randomOp(rng, mirror)
		}
		if err := db.Mutate(ctx, ops); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		checkExact(t, db, mirror, "after batch")
	}
	if err := db.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	checkExact(t, db, mirror, "after flush")
}

// TestMutableRebuildExactness lets the background reindexer run (tiny
// threshold) and checks exactness across hot swaps, including mutations
// racing into the window between index construction and publish.
func TestMutableRebuildExactness(t *testing.T) {
	g := gen.RandomDAG(gen.Config{N: 40, M: 80, Seed: 11})
	db := newMutableDB(t, g, MutationConfig{
		RebuildThreshold: 4,
		Fsync:            FsyncNever,
	}, false)
	mirror := mutableCopy(g)
	rng := rand.New(rand.NewSource(111))
	ctx := context.Background()
	for round := 0; round < 40; round++ {
		if err := db.Mutate(ctx, []EdgeOp{randomOp(rng, mirror)}); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		checkExact(t, db, mirror, "between swaps")
	}
	// Quiesce: wait for any in-flight rebuild, then check once more.
	waitRebuilt(t, db)
	checkExact(t, db, mirror, "after final rebuild")
}

// TestMutableRebaseRevertAcrossSwap pins the revert race: an edge removed
// before a rebuild is re-added while the rebuild runs. The rebase at
// publish time must notice that the new base lacks the edge even though
// the live overlay nets out empty for it.
func TestMutableRebaseRevertAcrossSwap(t *testing.T) {
	// 0→1→2 chain; removing and re-adding 1→2 mid-rebuild.
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g, err := b.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	db := newMutableDB(t, g, MutationConfig{
		RebuildThreshold: -1, // triggered manually below
		Fsync:            FsyncNever,
	}, false)
	ctx := context.Background()

	if err := db.RemoveEdge(ctx, 1, 2); err != nil {
		t.Fatal(err)
	}
	if got, _ := db.Reach(0, 2); got {
		t.Fatal("0→2 still reachable after removing 1→2")
	}

	// Arm the hook, then force one rebuild through the engine directly.
	hooked := make(chan struct{})
	db.mut.testHookPreSwap = func() {
		db.mut.testHookPreSwap = nil
		// The new index (no 1→2) is built; re-add the edge before publish.
		if err := db.AddEdge(ctx, 1, 2); err != nil {
			t.Errorf("re-add during rebuild: %v", err)
		}
		close(hooked)
	}
	if err := db.mut.rebuildOnce(); err != nil {
		t.Fatalf("rebuildOnce: %v", err)
	}
	<-hooked
	if got, _ := db.Reach(0, 2); !got {
		t.Fatal("re-added edge lost across rebuild hot swap (rebase bug)")
	}
	st := db.mut.state.Load()
	if !st.ov.HasAdded(1, 2) {
		t.Fatalf("overlay after swap: +%d/-%d, want 1→2 net-added",
			st.ov.AddedCount(), st.ov.RemovedCount())
	}
}

// TestMutableConcurrentStress races mutators, readers, flushers, and
// background rebuilds under -race. Mid-flight answers are checked for
// liveness only (no torn state can be asserted without a frozen oracle);
// after quiescing, the DB must match the exact closure of everything the
// single mutator thread committed.
func TestMutableConcurrentStress(t *testing.T) {
	if testing.Short() {
		t.Skip("concurrency stress")
	}
	g := gen.RandomDAG(gen.Config{N: 60, M: 150, Seed: 21})
	db := newMutableDB(t, g, MutationConfig{
		RebuildThreshold: 8,
		BatchDelay:       100 * time.Microsecond,
		Fsync:            FsyncNever,
	}, true)
	mirror := mutableCopy(g)
	ctx := context.Background()
	var stop atomic.Bool
	var wg sync.WaitGroup

	// One mutator: the mirror tracks exactly the committed history.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(5))
		for i := 0; i < 300 && !stop.Load(); i++ {
			op := randomOp(rng, mirror)
			if err := db.Mutate(ctx, []EdgeOp{op}); err != nil {
				t.Errorf("mutate: %v", err)
				return
			}
		}
	}()
	// Readers hammer single and batch queries throughout.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			for !stop.Load() {
				s, tt := V(rng.Intn(g.N())), V(rng.Intn(g.N()))
				if _, err := db.Reach(s, tt); err != nil {
					t.Errorf("reach: %v", err)
					return
				}
				if w == 0 {
					pairs := []Pair{{S: s, T: tt}, {S: tt, T: s}}
					if _, err := db.BatchReachCtx(ctx, pairs); err != nil {
						t.Errorf("batch: %v", err)
						return
					}
				}
				if w == 1 {
					if _, err := db.ReachPath(s, tt); err != nil {
						t.Errorf("path: %v", err)
						return
					}
				}
			}
		}(w)
	}
	// A flusher exercises the barrier path concurrently.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			if err := db.Flush(ctx); err != nil {
				t.Errorf("flush: %v", err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	time.Sleep(300 * time.Millisecond)
	stop.Store(true)
	wg.Wait()
	waitRebuilt(t, db)
	checkExact(t, db, mirror, "after concurrent stress")
}

// waitRebuilt waits for any in-flight background rebuild to finish.
func waitRebuilt(t *testing.T, db *DB) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		ms, ok := db.MutationStats()
		if !ok {
			t.Fatal("not mutable")
		}
		if !ms.Rebuilding {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("rebuild never finished")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestMutableDurabilityRestart: acknowledged mutations survive an abrupt
// restart (the first DB is never closed — its WAL simply gets re-opened,
// exactly the crash case) and replay into an exact state.
func TestMutableDurabilityRestart(t *testing.T) {
	g := gen.RandomDAG(gen.Config{N: 30, M: 60, Seed: 31})
	wal := filepath.Join(t.TempDir(), "crash.wal")
	db1, err := NewDB(g, DBConfig{Mutation: &MutationConfig{
		WALPath:          wal,
		RebuildThreshold: -1,
	}})
	if err != nil {
		t.Fatal(err)
	}
	mirror := mutableCopy(g)
	rng := rand.New(rand.NewSource(313))
	ctx := context.Background()
	nops := 0
	for i := 0; i < 25; i++ {
		op := randomOp(rng, mirror)
		if err := db1.Mutate(ctx, []EdgeOp{op}); err != nil {
			t.Fatal(err)
		}
		nops++
	}
	// No Close: db1 "crashes". FsyncAlways means every ack is on disk.

	db2, err := NewDB(g, DBConfig{Mutation: &MutationConfig{
		WALPath:          wal,
		RebuildThreshold: -1,
	}})
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	defer db2.Close()
	ms, ok := db2.MutationStats()
	if !ok || ms.Replayed != nops {
		t.Fatalf("replayed %d ops (ok=%v), want %d", ms.Replayed, ok, nops)
	}
	checkExact(t, db2, mirror, "after replay")

	// The replayed log keeps accepting appends with a contiguous sequence.
	if err := db2.AddEdge(ctx, 0, V(g.N()-1)); err != nil {
		t.Fatal(err)
	}
	mirror.insert(0, V(g.N()-1))
	checkExact(t, db2, mirror, "after post-replay append")
}

// TestMutableCleanShutdownReplay: Close drains queued mutations and the
// next start replays the full acknowledged history.
func TestMutableCleanShutdownReplay(t *testing.T) {
	g := gen.RandomDAG(gen.Config{N: 20, M: 40, Seed: 41})
	wal := filepath.Join(t.TempDir(), "clean.wal")
	db1, err := NewDB(g, DBConfig{Mutation: &MutationConfig{WALPath: wal, RebuildThreshold: -1, Fsync: FsyncNever}})
	if err != nil {
		t.Fatal(err)
	}
	mirror := mutableCopy(g)
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		u, v := V(i), V((i*7+3)%g.N())
		if err := db1.AddEdge(ctx, u, v); err != nil {
			t.Fatal(err)
		}
		mirror.insert(u, v)
	}
	if err := db1.Close(); err != nil {
		t.Fatal(err)
	}
	// Mutations after Close refuse; queries keep serving.
	if err := db1.AddEdge(ctx, 0, 1); !errors.Is(err, mutate.ErrClosed) {
		t.Fatalf("AddEdge after Close = %v, want ErrClosed", err)
	}
	checkExact(t, db1, mirror, "after close")

	db2, err := NewDB(g, DBConfig{Mutation: &MutationConfig{WALPath: wal, RebuildThreshold: -1}})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	checkExact(t, db2, mirror, "after clean restart")
}

// TestMutableInjectedWALFault: an injected disk fault on the commit path
// must reject the batch — nothing applied, nothing acknowledged, nothing
// on disk — and the engine must keep working once the fault clears.
func TestMutableInjectedWALFault(t *testing.T) {
	for _, site := range []string{mutate.SiteWALAppend, mutate.SiteWALFsync} {
		t.Run(site, func(t *testing.T) {
			g := gen.RandomDAG(gen.Config{N: 20, M: 40, Seed: 51})
			wal := filepath.Join(t.TempDir(), "fault.wal")
			db := newMutableDB(t, g, MutationConfig{WALPath: wal, RebuildThreshold: -1}, true)
			mirror := mutableCopy(g)
			ctx := context.Background()
			if err := db.AddEdge(ctx, 0, 5); err != nil {
				t.Fatal(err)
			}
			mirror.insert(0, 5)

			faultinject.Activate(&faultinject.Plan{Site: site, Kind: faultinject.Error})
			t.Cleanup(faultinject.Deactivate)
			err := db.AddEdge(ctx, 1, 6)
			var inj *faultinject.Injected
			if !errors.As(err, &inj) {
				t.Fatalf("AddEdge under %s fault = %v, want injected error", site, err)
			}
			// Rejected, not applied: state unchanged.
			checkExact(t, db, mirror, "after rejected commit")
			snap, ok := db.MetricsSnapshot()
			if !ok || snap.Mutation == nil {
				t.Fatal("no mutation metrics")
			}
			if snap.Mutation.WALErrors == 0 || snap.Mutation.Rejected == 0 {
				t.Fatalf("wal_errors=%d rejected=%d, want both > 0",
					snap.Mutation.WALErrors, snap.Mutation.Rejected)
			}

			// Fault cleared (plans fire once): the pipeline recovers.
			if err := db.AddEdge(ctx, 1, 6); err != nil {
				t.Fatalf("AddEdge after fault cleared: %v", err)
			}
			mirror.insert(1, 6)
			checkExact(t, db, mirror, "after recovery")

			// Restart replays only the acknowledged writes.
			db2, err := NewDB(g, DBConfig{Mutation: &MutationConfig{WALPath: wal, RebuildThreshold: -1}})
			if err != nil {
				t.Fatal(err)
			}
			defer db2.Close()
			checkExact(t, db2, mirror, "after restart")
		})
	}
}

// TestMutableRebuildPanicAvailability: a panicking index build inside the
// background reindexer must be contained — queries keep answering exactly
// from the old index plus the overlay, the failure is visible in metrics,
// and the engine recovers on a later rebuild once the fault clears.
func TestMutableRebuildPanicAvailability(t *testing.T) {
	g := gen.RandomDAG(gen.Config{N: 30, M: 60, Seed: 61})
	db := newMutableDB(t, g, MutationConfig{
		RebuildThreshold: 2,
		RebuildRetries:   -1, // one attempt, then degraded until next commit
		Fsync:            FsyncNever,
	}, true)
	mirror := mutableCopy(g)
	ctx := context.Background()

	faultinject.Activate(&faultinject.Plan{Site: mutate.SiteRebuild, Kind: faultinject.Panic})
	t.Cleanup(faultinject.Deactivate)

	// Exactly cross the threshold once — further commits would re-arm the
	// reindexer and (the plan fires once) let it recover prematurely.
	for _, v := range []V{5, 6} {
		if err := db.AddEdge(ctx, v, v); err != nil {
			t.Fatal(err)
		}
		mirror.insert(v, v)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		snap, _ := db.MetricsSnapshot()
		if snap.Mutation != nil && snap.Mutation.RebuildPanics > 0 && snap.Mutation.RebuildDegraded {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rebuild panic never surfaced: %+v", snap.Mutation)
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Availability: every answer still exact, index-free for the delta.
	checkExact(t, db, mirror, "while degraded")
	if ms, _ := db.MutationStats(); !ms.Degraded {
		t.Fatal("MutationStats.Degraded = false after exhausted retries")
	}

	// The plan fired once; the next commit re-arms the reindexer and the
	// rebuild now succeeds, folding the overlay away.
	faultinject.Deactivate()
	op := EdgeOp{From: 0, To: V(g.N() - 1)}
	mirror.insert(op.From, op.To)
	if err := db.Mutate(ctx, []EdgeOp{op}); err != nil {
		t.Fatal(err)
	}
	waitRebuilt(t, db)
	deadline = time.Now().Add(30 * time.Second)
	for {
		snap, _ := db.MetricsSnapshot()
		if snap.Mutation != nil && snap.Mutation.Rebuilds > 0 && !snap.Mutation.RebuildDegraded {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rebuild never recovered: %+v", snap.Mutation)
		}
		time.Sleep(2 * time.Millisecond)
	}
	checkExact(t, db, mirror, "after recovery rebuild")
}

// TestMutableConfigValidation: every invalid Mutation configuration is a
// typed ErrBadOptions at construction, and mutation entry points on a
// non-mutable DB are typed ErrNotMutable.
func TestMutableConfigValidation(t *testing.T) {
	wal := filepath.Join(t.TempDir(), "v.wal")
	cases := []struct {
		name string
		g    *Graph
		cfg  DBConfig
	}{
		{"missing WAL path", Fig1Plain(), DBConfig{Mutation: &MutationConfig{}}},
		{"labeled graph", Fig1Labeled(), DBConfig{Mutation: &MutationConfig{WALPath: wal}}},
		{"cache", Fig1Plain(), DBConfig{CacheSize: 64, Mutation: &MutationConfig{WALPath: wal}}},
		{"extra plain", Fig1Plain(), DBConfig{ExtraPlain: []Kind{KindPLL}, Mutation: &MutationConfig{WALPath: wal}}},
		{"bad fsync", Fig1Plain(), DBConfig{Mutation: &MutationConfig{WALPath: wal, Fsync: FsyncMode(9)}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewDB(tc.g, tc.cfg); !errors.Is(err, ErrBadOptions) {
				t.Fatalf("NewDB = %v, want ErrBadOptions", err)
			}
		})
	}

	plain, err := NewDB(Fig1Plain(), DBConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := plain.AddEdge(ctx, 0, 1); !errors.Is(err, ErrNotMutable) {
		t.Fatalf("AddEdge on plain DB = %v, want ErrNotMutable", err)
	}
	if got := StatusCode(ErrNotMutable); got != 501 {
		t.Fatalf("StatusCode(ErrNotMutable) = %d, want 501", got)
	}
	if err := plain.Flush(ctx); err != nil {
		t.Fatalf("Flush on plain DB = %v, want nil no-op", err)
	}
	if err := plain.Close(); err != nil {
		t.Fatalf("Close on plain DB = %v, want nil no-op", err)
	}
	if _, ok := plain.MutationStats(); ok {
		t.Fatal("MutationStats ok on plain DB")
	}

	// Vertex-range validation on a mutable DB.
	db := newMutableDB(t, Fig1Plain(), MutationConfig{RebuildThreshold: -1}, false)
	if err := db.AddEdge(ctx, 0, V(db.Graph().N())); !errors.Is(err, ErrVertexRange) {
		t.Fatalf("out-of-range AddEdge = %v, want ErrVertexRange", err)
	}
}

// TestMutableWALGraphMismatch: a WAL recorded against a bigger vertex
// universe must fail the build rather than silently dropping ops.
func TestMutableWALGraphMismatch(t *testing.T) {
	big := gen.RandomDAG(gen.Config{N: 50, M: 100, Seed: 71})
	wal := filepath.Join(t.TempDir(), "m.wal")
	db1, err := NewDB(big, DBConfig{Mutation: &MutationConfig{WALPath: wal, RebuildThreshold: -1}})
	if err != nil {
		t.Fatal(err)
	}
	if err := db1.AddEdge(context.Background(), 45, 49); err != nil {
		t.Fatal(err)
	}
	if err := db1.Close(); err != nil {
		t.Fatal(err)
	}
	small := gen.RandomDAG(gen.Config{N: 10, M: 20, Seed: 72})
	if _, err := NewDB(small, DBConfig{Mutation: &MutationConfig{WALPath: wal}}); !errors.Is(err, ErrBadOptions) {
		t.Fatalf("NewDB with mismatched WAL = %v, want ErrBadOptions", err)
	}
}

// TestMutablePathAndQuery covers the witness-path and unlabeled-query
// entry points against the overlaid graph.
func TestMutablePathAndQuery(t *testing.T) {
	// 0→1→2, 3 isolated.
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g, err := b.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	db := newMutableDB(t, g, MutationConfig{RebuildThreshold: -1, Fsync: FsyncNever}, false)
	ctx := context.Background()

	// Connect 2→3 through the overlay; a witness path must use it.
	if err := db.AddEdge(ctx, 2, 3); err != nil {
		t.Fatal(err)
	}
	path, err := db.ReachPath(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []V{0, 1, 2, 3}
	if len(path) != len(want) {
		t.Fatalf("path = %v, want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}

	// Remove a middle edge: reachability and the path must both go.
	if err := db.RemoveEdge(ctx, 1, 2); err != nil {
		t.Fatal(err)
	}
	if path, err := db.ReachPath(0, 3); err != nil || path != nil {
		t.Fatalf("ReachPath after cut = %v / %v, want nil/nil", path, err)
	}

	// Unlabeled constraint queries ride the overlay too: a* is plain
	// star reachability, a+ requires at least one live edge.
	if got, err := db.Query(2, 3, "a*"); err != nil || !got {
		t.Fatalf("Query(2,3,a*) = %v/%v, want true", got, err)
	}
	if got, err := db.Query(0, 2, "a*"); err != nil || got {
		t.Fatalf("Query(0,2,a*) = %v/%v, want false after cut", got, err)
	}
	if got, err := db.Query(0, 0, "a+"); err != nil || got {
		t.Fatalf("Query(0,0,a+) = %v/%v, want false (no self-loop)", got, err)
	}
	if err := db.AddEdge(ctx, 0, 0); err != nil {
		t.Fatal(err)
	}
	if got, err := db.Query(0, 0, "a+"); err != nil || !got {
		t.Fatalf("Query(0,0,a+) = %v/%v, want true via added self-loop", got, err)
	}
}

// TestMutableBatchMatchesSingle: the batch entry point and the single
// query path must agree under a live overlay.
func TestMutableBatchMatchesSingle(t *testing.T) {
	g := gen.RandomDAG(gen.Config{N: 30, M: 60, Seed: 81})
	db := newMutableDB(t, g, MutationConfig{RebuildThreshold: -1, Fsync: FsyncNever}, false)
	mirror := mutableCopy(g)
	rng := rand.New(rand.NewSource(818))
	ctx := context.Background()
	for i := 0; i < 15; i++ {
		if err := db.Mutate(ctx, []EdgeOp{randomOp(rng, mirror)}); err != nil {
			t.Fatal(err)
		}
	}
	var pairs []Pair
	for s := 0; s < g.N(); s++ {
		for tt := 0; tt < g.N(); tt++ {
			pairs = append(pairs, Pair{S: V(s), T: V(tt)})
		}
	}
	got, err := db.BatchReachCtx(ctx, pairs)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pairs {
		single, err := db.Reach(p.S, p.T)
		if err != nil {
			t.Fatal(err)
		}
		if got[i] != single {
			t.Fatalf("batch[%d] (%d,%d) = %v, single = %v", i, p.S, p.T, got[i], single)
		}
	}
	// Out-of-range pairs are typed errors, not panics.
	if _, err := db.BatchReachCtx(ctx, []Pair{{S: 0, T: V(g.N())}}); !errors.Is(err, ErrVertexRange) {
		t.Fatalf("batch out-of-range = %v, want ErrVertexRange", err)
	}
}

// TestMutableFlushDurabilityMetrics: Flush forces an fsync even under
// FsyncNever, and the metrics surface records it.
func TestMutableFlushDurabilityMetrics(t *testing.T) {
	g := gen.RandomDAG(gen.Config{N: 10, M: 20, Seed: 91})
	db := newMutableDB(t, g, MutationConfig{RebuildThreshold: -1, Fsync: FsyncNever}, true)
	ctx := context.Background()
	if err := db.AddEdge(ctx, 0, 9); err != nil {
		t.Fatal(err)
	}
	before, _ := db.MetricsSnapshot()
	if err := db.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	after, _ := db.MetricsSnapshot()
	if after.Mutation.WALFsyncs <= before.Mutation.WALFsyncs {
		t.Fatalf("Flush did not fsync: %d -> %d",
			before.Mutation.WALFsyncs, after.Mutation.WALFsyncs)
	}
	if after.Mutation.WALAppends == 0 || after.Mutation.Applied != 1 {
		t.Fatalf("appends=%d applied=%d", after.Mutation.WALAppends, after.Mutation.Applied)
	}
}
