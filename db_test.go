package reach

import (
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/labelset"
	"repro/internal/obs"
	"repro/internal/tc"
)

// labelSet adapts a raw mask for tests.
func labelSet(mask uint64) labelset.Set { return labelset.Set(mask) }

func fig1DB(t *testing.T) *DB {
	t.Helper()
	db, err := NewDB(Fig1Labeled(), DBConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func vertex(t *testing.T, db *DB, name string) V {
	t.Helper()
	v, ok := db.Graph().VertexByName(name)
	if !ok {
		t.Fatalf("no vertex %q", name)
	}
	return v
}

func TestDBPaperExamples(t *testing.T) {
	db := fig1DB(t)
	a, g := vertex(t, db, "A"), vertex(t, db, "G")
	l, b, m := vertex(t, db, "L"), vertex(t, db, "B"), vertex(t, db, "M")

	// §2.1: Qr(A, G) = true.
	if ok, err := db.Reach(a, g); err != nil || !ok {
		t.Errorf("Qr(A,G) = %v, %v; want true", ok, err)
	}
	// §2.2: Qr(A, G, (friendOf ∪ follows)*) = false.
	if ok, err := db.Query(a, g, "(friendOf|follows)*"); err != nil || ok {
		t.Errorf("Qr(A,G,(friendOf|follows)*) = %v, %v; want false", ok, err)
	}
	// §4.2: Qr(L, B, (worksFor·friendOf)*) = true.
	if ok, err := db.Query(l, b, "(worksFor.friendOf)*"); err != nil || !ok {
		t.Errorf("Qr(L,B,(worksFor.friendOf)*) = %v, %v; want true", ok, err)
	}
	// §4.1: L reaches M under worksFor alone.
	if ok, err := db.Query(l, m, "worksFor*"); err != nil || !ok {
		t.Errorf("Qr(L,M,worksFor*) = %v, %v; want true", ok, err)
	}
	// General constraint outside both fragments: product search.
	if ok, err := db.Query(a, m, "follows.worksFor.worksFor"); err != nil || !ok {
		t.Errorf("fixed-shape constraint = %v, %v; want true (A-L-C/K-M)", ok, err)
	}
	if ok, err := db.Query(a, m, "friendOf.worksFor"); err != nil || ok {
		t.Errorf("impossible fixed shape = %v, %v; want false", ok, err)
	}
}

func TestDBStarVsPlus(t *testing.T) {
	db := fig1DB(t)
	a := vertex(t, db, "A")
	// Star on a self query is trivially true; plus needs a real cycle —
	// Figure 1's reconstruction is acyclic, so plus must be false.
	if ok, _ := db.Query(a, a, "(friendOf|follows|worksFor)*"); !ok {
		t.Error("star self query should be true")
	}
	if ok, _ := db.Query(a, a, "(friendOf|follows|worksFor)+"); ok {
		t.Error("plus self query should be false on a DAG")
	}
	// Plus between distinct reachable vertices behaves like star here.
	d := vertex(t, db, "D")
	if ok, _ := db.Query(a, d, "(friendOf)+"); !ok {
		t.Error("Qr(A,D,friendOf+) should be true")
	}
}

func TestDBConcatenationPlus(t *testing.T) {
	db := fig1DB(t)
	l, b := vertex(t, db, "L"), vertex(t, db, "B")
	if ok, _ := db.Query(l, b, "(worksFor.friendOf)+"); !ok {
		t.Error("plus concatenation should be true (two full repeats)")
	}
	if ok, _ := db.Query(l, l, "(worksFor.friendOf)+"); ok {
		t.Error("plus self concatenation should be false on a DAG")
	}
}

func TestDBQueryAllowed(t *testing.T) {
	db := fig1DB(t)
	l, m := vertex(t, db, "L"), vertex(t, db, "M")
	if ok, err := db.QueryAllowed(l, m, 2); err != nil || !ok {
		t.Errorf("QueryAllowed(L,M,worksFor) = %v, %v", ok, err)
	}
	if ok, _ := db.QueryAllowed(l, m, 0); ok {
		t.Error("QueryAllowed(L,M,friendOf) should be false")
	}
}

func TestDBErrors(t *testing.T) {
	plain, err := NewDB(Fig1Plain(), DBConfig{Plain: KindPLL})
	if err != nil {
		t.Fatal(err)
	}
	// "x*" is label-insensitive and now served by the plain index; a
	// genuinely labeled constraint still fails on an unlabeled graph.
	if _, err := plain.Query(0, 1, "(x.y)*"); err == nil {
		t.Error("labeled constraint on unlabeled graph should fail")
	}
	if _, err := plain.Query(0, 1, "x.y"); err == nil {
		t.Error("fixed-shape constraint on unlabeled graph should fail")
	}
	if _, err := plain.QueryAllowed(0, 1, 0); err == nil {
		t.Error("QueryAllowed on unlabeled graph should fail")
	}
	labeled := fig1DB(t)
	if _, err := labeled.Query(0, 1, "(unknownLabel)*"); err == nil {
		t.Error("unknown label should fail")
	}
	if _, err := labeled.Query(0, 1, "((("); err == nil {
		t.Error("syntax error should fail")
	}
	if _, err := NewDB(Fig1Plain(), DBConfig{Plain: "bogus"}); err == nil {
		t.Error("bogus plain kind should fail")
	}
}

func TestDBReachPath(t *testing.T) {
	db := fig1DB(t)
	a, g := vertex(t, db, "A"), vertex(t, db, "G")
	p, err := db.ReachPath(a, g)
	if err != nil {
		t.Fatal(err)
	}
	if p == nil || p[0] != a || p[len(p)-1] != g {
		t.Fatalf("ReachPath(A,G) = %v", p)
	}
	// The shortest witness is the paper's (A, D, H, G).
	if len(p) != 4 {
		t.Errorf("expected the 4-vertex path A,D,H,G; got %d vertices", len(p))
	}
	if p, err := db.ReachPath(g, a); err != nil || p != nil {
		t.Errorf("path for an unreachable pair: %v, %v", p, err)
	}
}

func TestDBQueryPath(t *testing.T) {
	db := fig1DB(t)
	l, b := vertex(t, db, "L"), vertex(t, db, "B")
	edges, err := db.QueryPath(l, b, "(worksFor.friendOf)*")
	if err != nil || edges == nil {
		t.Fatalf("QueryPath = %v, %v", edges, err)
	}
	names := []string{}
	for _, e := range edges {
		names = append(names, db.Graph().LabelName(e.Label))
	}
	// The witness spells (worksFor, friendOf) repeats — the paper's MR.
	for i, n := range names {
		want := "worksFor"
		if i%2 == 1 {
			want = "friendOf"
		}
		if n != want {
			t.Fatalf("witness labels %v do not repeat the MR", names)
		}
	}
	if _, err := db.QueryPath(l, b, "(((("); err == nil {
		t.Error("syntax error should fail")
	}
	plain, _ := NewDB(Fig1Plain(), DBConfig{})
	if _, err := plain.QueryPath(0, 1, "x*"); err == nil {
		t.Error("unlabeled graph should fail")
	}
}

func TestDBRegisterConstraint(t *testing.T) {
	db := fig1DB(t)
	a, m := vertex(t, db, "A"), vertex(t, db, "M")
	alpha := "follows.(worksFor)+" // general class: normally product search
	before, err := db.Query(a, m, alpha)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.RegisterConstraint(alpha); err != nil {
		t.Fatal(err)
	}
	after, err := db.Query(a, m, alpha)
	if err != nil {
		t.Fatal(err)
	}
	if before != after || !after {
		t.Fatalf("registered-index answer diverged: %v vs %v", before, after)
	}
	// Equivalent spelling (same normalized AST) also routes to the index.
	if got, _ := db.Query(a, m, "follows . (worksFor)+"); got != after {
		t.Error("normalized routing failed")
	}
	// Exhaustive agreement between registered index and product search.
	for s := V(0); int(s) < db.Graph().N(); s++ {
		for tt := V(0); int(tt) < db.Graph().N(); tt++ {
			viaIndex, _ := db.Query(s, tt, alpha)
			fresh := fig1DB(t) // no registration: product search
			viaSearch, _ := fresh.Query(s, tt, alpha)
			if viaIndex != viaSearch {
				t.Fatalf("(%d,%d): index %v, search %v", s, tt, viaIndex, viaSearch)
			}
		}
	}
	if err := db.RegisterConstraint("((("); err == nil {
		t.Error("syntax error should fail")
	}
	plain, _ := NewDB(Fig1Plain(), DBConfig{})
	if err := plain.RegisterConstraint("x*"); err == nil {
		t.Error("unlabeled graph should fail")
	}
}

func TestDBStats(t *testing.T) {
	db := fig1DB(t)
	st := db.Stats()
	if len(st) != 3 {
		t.Fatalf("stats entries = %d, want 3 (plain+LCR+RLC)", len(st))
	}
	for name, s := range st {
		if s.Bytes < 0 {
			t.Errorf("%s: negative bytes", name)
		}
	}
}

func TestDBUnlabeledTrivialConstraints(t *testing.T) {
	db, err := NewDB(Fig1Plain(), DBConfig{})
	if err != nil {
		t.Fatal(err)
	}
	g := db.Graph()
	// Any alternation-star is label-insensitive: Query must agree with
	// Reach on every pair.
	for s := V(0); int(s) < g.N(); s++ {
		for tt := V(0); int(tt) < g.N(); tt++ {
			got, err := db.Query(s, tt, "(a|b)*")
			if err != nil {
				t.Fatalf("Query(%d,%d,(a|b)*): %v", s, tt, err)
			}
			want, rerr := db.Reach(s, tt)
			if rerr != nil {
				t.Fatal(rerr)
			}
			if got != want {
				t.Fatalf("Query(%d,%d,(a|b)*) = %v, Reach = %v", s, tt, got, want)
			}
		}
	}
	// Single-label star behaves the same.
	if got, err := db.Query(0, 0, "x*"); err != nil || !got {
		t.Errorf("Query(0,0,x*) = %v, %v; want true", got, err)
	}
	// Plus needs at least one edge: self-plus is false on a DAG.
	if got, err := db.Query(0, 0, "(a|b)+"); err != nil || got {
		t.Errorf("Query(0,0,(a|b)+) = %v, %v; want false", got, err)
	}
	// Plus between distinct vertices agrees with Reach (every nonempty
	// path has length >= 1 already).
	for s := V(0); int(s) < g.N(); s++ {
		for tt := V(0); int(tt) < g.N(); tt++ {
			if s == tt {
				continue
			}
			got, err := db.Query(s, tt, "e+")
			if err != nil {
				t.Fatal(err)
			}
			want, rerr := db.Reach(s, tt)
			if rerr != nil {
				t.Fatal(rerr)
			}
			if got != want {
				t.Fatalf("Query(%d,%d,e+) = %v, Reach = %v", s, tt, got, want)
			}
		}
	}
	// Genuinely labeled constraints error, with a message that names the
	// actual problem rather than the blanket "use Reach".
	if _, err := db.Query(0, 1, "(a.b)*"); err == nil ||
		!strings.Contains(err.Error(), "depends on edge labels") {
		t.Errorf("labeled constraint error = %v", err)
	}
	// Syntax errors still surface as parse errors.
	if _, err := db.Query(0, 1, "((("); err == nil {
		t.Error("syntax error should fail on unlabeled graphs too")
	}
}

// TestDBMetricsDecidedFallback asserts that a batch of mixed positive and
// negative queries through an instrumented Partial plain index (BFL)
// yields exactly the decided/fallback split TryReach predicts, plus the
// right positive/negative and routing counts and build-phase spans.
func TestDBMetricsDecidedFallback(t *testing.T) {
	g := gen.RandomDAG(gen.Config{N: 400, M: 1200, Seed: 11})
	db, err := NewDB(g, DBConfig{Plain: KindBFL, Metrics: true, Options: Options{Bits: 64}})
	if err != nil {
		t.Fatal(err)
	}
	oracle := tc.NewClosure(g)
	probe, ok := db.plain.(PartialIndex)
	if !ok {
		t.Fatal("instrumented BFL should still expose TryReach")
	}
	qs := gen.QueriesWithRatio(g, 500, 0.5, 12)
	var wantPos, wantNeg, wantDecided, wantFallback int64
	for _, q := range qs {
		if oracle.Reach(q.S, q.T) {
			wantPos++
		} else {
			wantNeg++
		}
		if _, decided := probe.TryReach(q.S, q.T); decided {
			wantDecided++
		} else {
			wantFallback++
		}
		if got, rerr := db.Reach(q.S, q.T); rerr != nil || got != oracle.Reach(q.S, q.T) {
			t.Fatalf("Reach(%d,%d) wrong (err %v)", q.S, q.T, rerr)
		}
	}
	snap, ok := db.MetricsSnapshot()
	if !ok {
		t.Fatal("metrics enabled but no snapshot")
	}
	is, ok := snap.Indexes["BFL"]
	if !ok {
		t.Fatalf("no BFL index metrics; have %v", snap.Indexes)
	}
	if is.Queries != int64(len(qs)) {
		t.Errorf("queries = %d, want %d", is.Queries, len(qs))
	}
	if is.Positive != wantPos || is.Negative != wantNeg {
		t.Errorf("positive/negative = %d/%d, want %d/%d", is.Positive, is.Negative, wantPos, wantNeg)
	}
	if is.Decided != wantDecided || is.Fallback != wantFallback {
		t.Errorf("decided/fallback = %d/%d, want %d/%d", is.Decided, is.Fallback, wantDecided, wantFallback)
	}
	if wantFallback > 0 && is.Visited == 0 {
		t.Error("fallbacks occurred but no visited vertices recorded")
	}
	// Latency is sampled (1 in 32; the very first query is always timed),
	// so the histogram holds some — but not necessarily all — queries.
	if c := is.Latency.Count; c == 0 || c > int64(len(qs)) {
		t.Errorf("latency count = %d, want in 1..%d", c, len(qs))
	}
	// Routing: everything above went through the plain route.
	if rs := snap.Routes[obs.RoutePlain.String()]; rs.Queries != int64(len(qs)) {
		t.Errorf("plain route queries = %d, want %d", rs.Queries, len(qs))
	}
	// Build phases: SCC condensation, the lifted build, and BFL's own
	// internal phases must all be present and named.
	names := map[string]bool{}
	for _, sp := range snap.Build {
		names[sp.Name] = true
	}
	for _, want := range []string{"scc/condense", "index/build", "bfl/dfs-intervals", "bfl/filters-out"} {
		if !names[want] {
			t.Errorf("missing build phase %q in %v", want, names)
		}
	}
}

// TestDBMetricsRouting drives one query through every routing class of a
// labeled DB and checks the per-class counters.
func TestDBMetricsRouting(t *testing.T) {
	db, err := NewDB(Fig1Labeled(), DBConfig{Metrics: true})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := db.Graph().VertexByName("A")
	g, _ := db.Graph().VertexByName("G")
	l, _ := db.Graph().VertexByName("L")
	b, _ := db.Graph().VertexByName("B")
	m, _ := db.Graph().VertexByName("M")

	db.Reach(a, g)                              // plain
	db.Query(a, g, "(friendOf|follows)*")       // lcr
	db.Query(l, b, "(worksFor.friendOf)*")      // rlc
	db.Query(a, m, "follows.worksFor.worksFor") // product
	if err := db.RegisterConstraint("follows.(worksFor)+"); err != nil {
		t.Fatal(err)
	}
	db.Query(a, m, "follows.(worksFor)+") // registered
	db.Query(a, m, "(((")                 // parse error

	snap, _ := db.MetricsSnapshot()
	for route, want := range map[string]int64{
		"plain": 1, "lcr": 1, "rlc": 1, "product": 1, "registered": 1,
	} {
		if got := snap.Routes[route].Queries; got != want {
			t.Errorf("route %s queries = %d, want %d", route, got, want)
		}
	}
	if snap.Errors != 1 {
		t.Errorf("errors = %d, want 1", snap.Errors)
	}
	if len(snap.Build) < 3 {
		t.Errorf("expected >=3 build phases, got %v", snap.Build)
	}
}

// TestBatchReachInstrumented checks that batches over an instrumented
// index record batch-level and per-query counters.
func TestBatchReachInstrumented(t *testing.T) {
	g := gen.RandomDAG(gen.Config{N: 200, M: 600, Seed: 21})
	raw, err := Build(KindBFL, g, Options{Bits: 64})
	if err != nil {
		t.Fatal(err)
	}
	var m IndexMetrics
	ix := Instrument(raw, g, &m)
	qs := gen.Queries(g, 100, 22)
	pairs := make([]Pair, len(qs))
	for i, q := range qs {
		pairs[i] = Pair{S: q.S, T: q.T}
	}
	got, err := BatchReach(ix, g, pairs, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range qs {
		if got[i] != q.Want {
			t.Fatalf("batch answer %d wrong", i)
		}
	}
	s := m.Snapshot()
	if s.Batches != 1 || s.BatchQueries != int64(len(pairs)) {
		t.Errorf("batches/batch_queries = %d/%d, want 1/%d", s.Batches, s.BatchQueries, len(pairs))
	}
	if s.Queries != int64(len(pairs)) {
		t.Errorf("queries = %d, want %d", s.Queries, len(pairs))
	}
	if s.Decided+s.Fallback != s.Queries {
		t.Errorf("decided+fallback = %d, want %d", s.Decided+s.Fallback, s.Queries)
	}
}

func TestDBAlternativePlainAndLCRKinds(t *testing.T) {
	for _, cfg := range []DBConfig{
		{Plain: KindGRAIL, LCR: LCRLandmark, Options: Options{K: 4}},
		{Plain: KindTOL, LCR: LCRZouGTC},
		{Plain: KindPathTree, LCR: LCRJinTree},
	} {
		db, err := NewDB(Fig1Labeled(), cfg)
		if err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		a, _ := db.Graph().VertexByName("A")
		g, _ := db.Graph().VertexByName("G")
		if ok, rerr := db.Reach(a, g); rerr != nil || !ok {
			t.Errorf("%+v: Qr(A,G) wrong (%v, %v)", cfg, ok, rerr)
		}
		if ok, _ := db.Query(a, g, "(friendOf|follows)*"); ok {
			t.Errorf("%+v: LCR answer wrong", cfg)
		}
	}
}
