package reach

import (
	"testing"

	"repro/internal/labelset"
)

// labelSet adapts a raw mask for tests.
func labelSet(mask uint64) labelset.Set { return labelset.Set(mask) }

func fig1DB(t *testing.T) *DB {
	t.Helper()
	db, err := NewDB(Fig1Labeled(), DBConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func vertex(t *testing.T, db *DB, name string) V {
	t.Helper()
	v, ok := db.Graph().VertexByName(name)
	if !ok {
		t.Fatalf("no vertex %q", name)
	}
	return v
}

func TestDBPaperExamples(t *testing.T) {
	db := fig1DB(t)
	a, g := vertex(t, db, "A"), vertex(t, db, "G")
	l, b, m := vertex(t, db, "L"), vertex(t, db, "B"), vertex(t, db, "M")

	// §2.1: Qr(A, G) = true.
	if !db.Reach(a, g) {
		t.Error("Qr(A,G) should be true")
	}
	// §2.2: Qr(A, G, (friendOf ∪ follows)*) = false.
	if ok, err := db.Query(a, g, "(friendOf|follows)*"); err != nil || ok {
		t.Errorf("Qr(A,G,(friendOf|follows)*) = %v, %v; want false", ok, err)
	}
	// §4.2: Qr(L, B, (worksFor·friendOf)*) = true.
	if ok, err := db.Query(l, b, "(worksFor.friendOf)*"); err != nil || !ok {
		t.Errorf("Qr(L,B,(worksFor.friendOf)*) = %v, %v; want true", ok, err)
	}
	// §4.1: L reaches M under worksFor alone.
	if ok, err := db.Query(l, m, "worksFor*"); err != nil || !ok {
		t.Errorf("Qr(L,M,worksFor*) = %v, %v; want true", ok, err)
	}
	// General constraint outside both fragments: product search.
	if ok, err := db.Query(a, m, "follows.worksFor.worksFor"); err != nil || !ok {
		t.Errorf("fixed-shape constraint = %v, %v; want true (A-L-C/K-M)", ok, err)
	}
	if ok, err := db.Query(a, m, "friendOf.worksFor"); err != nil || ok {
		t.Errorf("impossible fixed shape = %v, %v; want false", ok, err)
	}
}

func TestDBStarVsPlus(t *testing.T) {
	db := fig1DB(t)
	a := vertex(t, db, "A")
	// Star on a self query is trivially true; plus needs a real cycle —
	// Figure 1's reconstruction is acyclic, so plus must be false.
	if ok, _ := db.Query(a, a, "(friendOf|follows|worksFor)*"); !ok {
		t.Error("star self query should be true")
	}
	if ok, _ := db.Query(a, a, "(friendOf|follows|worksFor)+"); ok {
		t.Error("plus self query should be false on a DAG")
	}
	// Plus between distinct reachable vertices behaves like star here.
	d := vertex(t, db, "D")
	if ok, _ := db.Query(a, d, "(friendOf)+"); !ok {
		t.Error("Qr(A,D,friendOf+) should be true")
	}
}

func TestDBConcatenationPlus(t *testing.T) {
	db := fig1DB(t)
	l, b := vertex(t, db, "L"), vertex(t, db, "B")
	if ok, _ := db.Query(l, b, "(worksFor.friendOf)+"); !ok {
		t.Error("plus concatenation should be true (two full repeats)")
	}
	if ok, _ := db.Query(l, l, "(worksFor.friendOf)+"); ok {
		t.Error("plus self concatenation should be false on a DAG")
	}
}

func TestDBQueryAllowed(t *testing.T) {
	db := fig1DB(t)
	l, m := vertex(t, db, "L"), vertex(t, db, "M")
	if ok, err := db.QueryAllowed(l, m, 2); err != nil || !ok {
		t.Errorf("QueryAllowed(L,M,worksFor) = %v, %v", ok, err)
	}
	if ok, _ := db.QueryAllowed(l, m, 0); ok {
		t.Error("QueryAllowed(L,M,friendOf) should be false")
	}
}

func TestDBErrors(t *testing.T) {
	plain, err := NewDB(Fig1Plain(), DBConfig{Plain: KindPLL})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plain.Query(0, 1, "x*"); err == nil {
		t.Error("constrained query on unlabeled graph should fail")
	}
	if _, err := plain.QueryAllowed(0, 1, 0); err == nil {
		t.Error("QueryAllowed on unlabeled graph should fail")
	}
	labeled := fig1DB(t)
	if _, err := labeled.Query(0, 1, "(unknownLabel)*"); err == nil {
		t.Error("unknown label should fail")
	}
	if _, err := labeled.Query(0, 1, "((("); err == nil {
		t.Error("syntax error should fail")
	}
	if _, err := NewDB(Fig1Plain(), DBConfig{Plain: "bogus"}); err == nil {
		t.Error("bogus plain kind should fail")
	}
}

func TestDBReachPath(t *testing.T) {
	db := fig1DB(t)
	a, g := vertex(t, db, "A"), vertex(t, db, "G")
	p := db.ReachPath(a, g)
	if p == nil || p[0] != a || p[len(p)-1] != g {
		t.Fatalf("ReachPath(A,G) = %v", p)
	}
	// The shortest witness is the paper's (A, D, H, G).
	if len(p) != 4 {
		t.Errorf("expected the 4-vertex path A,D,H,G; got %d vertices", len(p))
	}
	if db.ReachPath(g, a) != nil {
		t.Error("path for an unreachable pair")
	}
}

func TestDBQueryPath(t *testing.T) {
	db := fig1DB(t)
	l, b := vertex(t, db, "L"), vertex(t, db, "B")
	edges, err := db.QueryPath(l, b, "(worksFor.friendOf)*")
	if err != nil || edges == nil {
		t.Fatalf("QueryPath = %v, %v", edges, err)
	}
	names := []string{}
	for _, e := range edges {
		names = append(names, db.Graph().LabelName(e.Label))
	}
	// The witness spells (worksFor, friendOf) repeats — the paper's MR.
	for i, n := range names {
		want := "worksFor"
		if i%2 == 1 {
			want = "friendOf"
		}
		if n != want {
			t.Fatalf("witness labels %v do not repeat the MR", names)
		}
	}
	if _, err := db.QueryPath(l, b, "(((("); err == nil {
		t.Error("syntax error should fail")
	}
	plain, _ := NewDB(Fig1Plain(), DBConfig{})
	if _, err := plain.QueryPath(0, 1, "x*"); err == nil {
		t.Error("unlabeled graph should fail")
	}
}

func TestDBRegisterConstraint(t *testing.T) {
	db := fig1DB(t)
	a, m := vertex(t, db, "A"), vertex(t, db, "M")
	alpha := "follows.(worksFor)+" // general class: normally product search
	before, err := db.Query(a, m, alpha)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.RegisterConstraint(alpha); err != nil {
		t.Fatal(err)
	}
	after, err := db.Query(a, m, alpha)
	if err != nil {
		t.Fatal(err)
	}
	if before != after || !after {
		t.Fatalf("registered-index answer diverged: %v vs %v", before, after)
	}
	// Equivalent spelling (same normalized AST) also routes to the index.
	if got, _ := db.Query(a, m, "follows . (worksFor)+"); got != after {
		t.Error("normalized routing failed")
	}
	// Exhaustive agreement between registered index and product search.
	for s := V(0); int(s) < db.Graph().N(); s++ {
		for tt := V(0); int(tt) < db.Graph().N(); tt++ {
			viaIndex, _ := db.Query(s, tt, alpha)
			fresh := fig1DB(t) // no registration: product search
			viaSearch, _ := fresh.Query(s, tt, alpha)
			if viaIndex != viaSearch {
				t.Fatalf("(%d,%d): index %v, search %v", s, tt, viaIndex, viaSearch)
			}
		}
	}
	if err := db.RegisterConstraint("((("); err == nil {
		t.Error("syntax error should fail")
	}
	plain, _ := NewDB(Fig1Plain(), DBConfig{})
	if err := plain.RegisterConstraint("x*"); err == nil {
		t.Error("unlabeled graph should fail")
	}
}

func TestDBStats(t *testing.T) {
	db := fig1DB(t)
	st := db.Stats()
	if len(st) != 3 {
		t.Fatalf("stats entries = %d, want 3 (plain+LCR+RLC)", len(st))
	}
	for name, s := range st {
		if s.Bytes < 0 {
			t.Errorf("%s: negative bytes", name)
		}
	}
}

func TestDBAlternativePlainAndLCRKinds(t *testing.T) {
	for _, cfg := range []DBConfig{
		{Plain: KindGRAIL, LCR: LCRLandmark, Options: Options{K: 4}},
		{Plain: KindTOL, LCR: LCRZouGTC},
		{Plain: KindPathTree, LCR: LCRJinTree},
	} {
		db, err := NewDB(Fig1Labeled(), cfg)
		if err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		a, _ := db.Graph().VertexByName("A")
		g, _ := db.Graph().VertexByName("G")
		if !db.Reach(a, g) {
			t.Errorf("%+v: Qr(A,G) wrong", cfg)
		}
		if ok, _ := db.Query(a, g, "(friendOf|follows)*"); ok {
			t.Errorf("%+v: LCR answer wrong", cfg)
		}
	}
}
